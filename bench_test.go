// Benchmarks regenerating the paper's evaluation, one per table row and
// figure (see DESIGN.md's experiment index). The interesting output is the
// custom metrics: rounds/n for the linear-time claims, rounds/(n·log n) for
// Theorem 8, moves/n² for the quadratic PT claims — the *shape* of the
// paper's complexity map. Absolute ns/op figures measure the simulator, not
// the algorithms. BenchmarkSweep measures batch throughput of the
// Scenario/Sweep executor (scenarios/op via the reported metric).
package dynring_test

import (
	"context"
	"testing"

	"dynring"
	"dynring/internal/catchtree"
	"dynring/internal/expt"
	"dynring/internal/ids"
)

// mustRun executes a scenario and fails the benchmark on error.
func mustRun(b *testing.B, sc dynring.Scenario) dynring.Result {
	b.Helper()
	res, err := sc.Run()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// mustRows executes an experiment group and fails on any failed verdict.
func mustRows(b *testing.B, f func() ([]expt.Row, error)) []expt.Row {
	b.Helper()
	rows, err := f()
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range rows {
		if !r.OK {
			b.Fatalf("experiment failed: %s", r)
		}
	}
	return rows
}

// BenchmarkEngine_Step measures raw simulator throughput: one SSYNC/PT round
// with three agents on a 64-node ring under a random adversary. The reported
// allocs/op are the adversary's own (Activate building its id slice); the
// engine contributes zero — see BenchmarkEngine_StepFSync.
func BenchmarkEngine_Step(b *testing.B) {
	newWorld := func(seed int64) *dynring.World {
		w, err := dynring.Scenario{
			Size:         64,
			Landmark:     dynring.NoLandmark,
			Algorithm:    "PTBoundNoChirality",
			Model:        dynring.SSyncPT,
			NewAdversary: dynring.RandomEdgesFactory(0.5),
			Seed:         seed,
		}.NewWorld()
		if err != nil {
			b.Fatal(err)
		}
		return w
	}
	w := newWorld(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Step(); err != nil {
			// The protocol may legitimately terminate: rebuild.
			b.StopTimer()
			w = newWorld(int64(i))
			b.StartTimer()
		}
	}
}

// BenchmarkEngine_StepFSync is the zero-allocation contract, benchmarked:
// the FSYNC steady state of World.Step must report 0 allocs/op (enforced as
// a hard gate by TestScenarioStepZeroAllocSteadyState and the engine-level
// TestStepZeroAllocSteadyState).
func BenchmarkEngine_StepFSync(b *testing.B) {
	w, err := dynring.Scenario{
		Size:      64,
		Landmark:  dynring.NoLandmark,
		Algorithm: "UnconsciousExploration",
		Model:     dynring.FSync,
	}.NewWorld()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// runnerBatch is the scenario mix the Runner benchmarks execute per
// iteration: mixed algorithms and sizes, so world Reset always crosses
// configurations (the Runner's worst case for reuse).
func runnerBatch(b *testing.B) []dynring.Scenario {
	b.Helper()
	sw := dynring.Sweep{
		Base: dynring.Scenario{
			Landmark:       0,
			AdversaryLabel: "random(p=0.4)",
			NewAdversary:   dynring.RandomEdgesFactory(0.4),
		},
		Algorithms: []string{"KnownNNoChirality", "LandmarkWithChirality"},
		Sizes:      []int{8, 16, 32},
		Seeds:      []int64{1, 2},
	}
	scs, err := sw.Scenarios()
	if err != nil {
		b.Fatal(err)
	}
	return scs
}

// BenchmarkRunner_Batched measures back-to-back scenario execution through
// one Runner (the sweep/service worker path: worlds Reset in place, rings
// cached); compare against BenchmarkRunner_Fresh for the reuse dividend.
func BenchmarkRunner_Batched(b *testing.B) {
	scs := runnerBatch(b)
	r := dynring.NewRunner()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sc := range scs {
			if _, err := r.Run(ctx, sc); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(scs)), "scenarios/op")
}

// BenchmarkRunner_Fresh is the unbatched baseline: the same scenario mix,
// each run building its world from scratch.
func BenchmarkRunner_Fresh(b *testing.B) {
	scs := runnerBatch(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sc := range scs {
			if _, err := sc.RunContext(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(scs)), "scenarios/op")
}

// benchAdversaries builds a deterministic schedule-heavy adversary axis.
func benchAdversaries(b *testing.B, specs ...dynring.AdversarySpec) []dynring.SweepAdversary {
	b.Helper()
	out := make([]dynring.SweepAdversary, 0, len(specs))
	for _, spec := range specs {
		f, err := spec.Factory()
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, dynring.SweepAdversary{Name: spec.Label(), New: f})
	}
	return out
}

// scheduleHeavySweep is BenchmarkSweep's grid: deterministic adversarial
// schedules (the paper's regime) over fingerprint-capable SSYNC algorithms
// and one FSYNC control, where blocked-waiting dominates — capped(r=2)
// blockades every coverage move, so those cells run to their full n²-scale
// horizons. This is the workload the quiescence leap rewrites: the engine
// proves the blockades are fixed points and skips them in O(1).
func scheduleHeavySweep() dynring.Sweep {
	return dynring.Sweep{
		Base: dynring.Scenario{Landmark: 0, StopWhenExplored: true},
		Algorithms: []string{
			"PTBoundWithChirality", "PTLandmarkWithChirality",
			"ETUnconscious", "KnownNNoChirality",
		},
		Sizes: []int{8, 16},
		Seeds: []int64{1, 2, 3, 4},
	}
}

// runSweepBench executes sw once per iteration and reports scenarios/op.
func runSweepBench(b *testing.B, mk func() dynring.Sweep) {
	b.Helper()
	sw := mk()
	scenarios, err := sw.Scenarios()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := mk().Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
	b.ReportMetric(float64(len(scenarios)), "scenarios/op")
}

// BenchmarkSweep measures batch throughput of the concurrent executor on
// the schedule-heavy grid (128 scenarios, no memo): the quiescence leap is
// what keeps the capped-blockade cells — a quarter of the grid, each worth
// up to 900·n²+9000 rounds of provable non-progress — from dominating.
func BenchmarkSweep(b *testing.B) {
	runSweepBench(b, func() dynring.Sweep {
		sw := scheduleHeavySweep()
		sw.Adversaries = benchAdversaries(b,
			dynring.AdversarySpec{Kind: "greedy"},
			dynring.AdversarySpec{Kind: "capped", R: 2},
			dynring.AdversarySpec{Kind: "frontier"},
			dynring.AdversarySpec{Kind: "tinterval", T: 4},
		)
		return sw
	})
}

// memoSweepGrid is the memo benchmarks' grid. LandmarkFreeExactN is the
// deliberately leap-resistant row: a time-driven FSYNC protocol without
// fingerprints, whose capped-blockade cells burn their full O(n²) budgets
// round by round — so collapsing its seed axis (greedy and capped ignore
// their seeds) is worth real milliseconds, not just bookkeeping.
func memoSweepGrid(memo *dynring.Memo) dynring.Sweep {
	greedy, _ := dynring.AdversarySpec{Kind: "greedy"}.Factory()
	capped, _ := dynring.AdversarySpec{Kind: "capped", R: 2}.Factory()
	return dynring.Sweep{
		Base: dynring.Scenario{Landmark: dynring.NoLandmark, StopWhenExplored: true},
		Algorithms: []string{
			"LandmarkFreeExactN", "PTBoundNoChirality", "ETUnconscious",
		},
		Sizes: []int{8, 12},
		Seeds: []int64{1, 2, 3, 4},
		Adversaries: []dynring.SweepAdversary{
			{Name: "greedy", New: greedy},
			{Name: "capped(r=2)", New: capped},
		},
		Memo: memo,
	}
}

// BenchmarkSweepMemoCold: a fresh memo per sweep measures within-grid
// memoization — every (algorithm, size, adversary) cell executes once and
// its three seed-axis copies replay. Compare BenchmarkSweepMemoOff for the
// dividend.
func BenchmarkSweepMemoCold(b *testing.B) {
	runSweepBench(b, func() dynring.Sweep { return memoSweepGrid(dynring.NewMemo(4096)) })
}

// BenchmarkSweepMemoOff is BenchmarkSweepMemoCold's control: the same grid
// with memoization disabled executes all 48 scenarios.
func BenchmarkSweepMemoOff(b *testing.B) {
	runSweepBench(b, func() dynring.Sweep { return memoSweepGrid(nil) })
}

// BenchmarkSweepMemoHit: one memo shared across iterations measures the
// repeated-local-sweep path (the cmd/ringsim -memo default when the same
// grid is run again): everything replays, nothing executes.
func BenchmarkSweepMemoHit(b *testing.B) {
	memo := dynring.NewMemo(4096)
	if _, err := memoSweepGrid(memo).Run(context.Background()); err != nil {
		b.Fatal(err) // warm every key before the clock starts
	}
	runSweepBench(b, func() dynring.Sweep { return memoSweepGrid(memo) })
}

// BenchmarkLeap_BlockedRing pits the leap fast path against round-by-round
// stepping on a long-budget total blockade: two PT agents against
// capped(r=2), which removes both coverage edges every round, freezing the
// configuration for the whole 50k-round horizon. The "step" variant is the
// pre-leap engine's cost for the same Result.
func BenchmarkLeap_BlockedRing(b *testing.B) {
	base := dynring.Scenario{
		Size: 16, Landmark: dynring.NoLandmark,
		Algorithm:      "PTBoundWithChirality",
		AdversaryLabel: "capped(r=2)",
		NewAdversary:   dynring.Fixed(dynring.CappedRemoval(2)),
		MaxRounds:      50_000,
	}
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"leap", false}, {"step", true}} {
		b.Run(tc.name, func(b *testing.B) {
			sc := base
			sc.DisableLeap = tc.disable
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := sc.Run()
				if err != nil {
					b.Fatal(err)
				}
				if res.Outcome != dynring.OutcomeHorizon || res.TotalMoves != 0 {
					b.Fatalf("blockade broke: %+v", res)
				}
			}
		})
	}
}

// BenchmarkTable1_Impossibilities replays the Theorem 1/2 and
// Observation 1/2 constructions.
func BenchmarkTable1_Impossibilities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mustRows(b, expt.Table1)
	}
}

// BenchmarkTable2_KnownN: Theorem 3 under the tight Figure 2 schedule.
// Metric: rounds/n, expected to approach 3.
func BenchmarkTable2_KnownN(b *testing.B) {
	const n = 64
	var rounds int
	for i := 0; i < b.N; i++ {
		res := mustRun(b, dynring.Scenario{
			Size:         n,
			Landmark:     dynring.NoLandmark,
			Algorithm:    "KnownNNoChirality",
			Starts:       []int{0, 1},
			Orients:      []dynring.GlobalDir{dynring.CCW, dynring.CCW},
			NewAdversary: dynring.Fixed(figure2Adversary{n: n}),
		})
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds)/float64(n), "rounds/n")
}

// figure2Adversary is the Figure 2 schedule expressed through the public
// interface (the internal adversary package also ships it).
type figure2Adversary struct{ n int }

func (f figure2Adversary) Activate(_ int, w *dynring.World) []int {
	ids := make([]int, w.NumAgents())
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func (f figure2Adversary) MissingEdge(t int, _ *dynring.World, _ []dynring.Intent) int {
	if t <= f.n-4 {
		return 0
	}
	return f.n - 2
}

// BenchmarkTable2_LandmarkChirality: Theorem 6. Metric: rounds/n (O(n)).
func BenchmarkTable2_LandmarkChirality(b *testing.B) {
	const n = 128
	var last int
	for i := 0; i < b.N; i++ {
		res := mustRun(b, dynring.Scenario{
			Size:         n,
			Landmark:     0,
			Algorithm:    "LandmarkWithChirality",
			Starts:       []int{2, n/2 + 2},
			NewAdversary: dynring.Fixed(dynring.GreedyBlocking()),
		})
		if res.Terminated != 2 {
			b.Fatal("not fully terminated")
		}
		last = res.Rounds
	}
	b.ReportMetric(float64(last)/float64(n), "rounds/n")
}

// BenchmarkTable2_LandmarkNoChirality: Theorem 8.
// Metric: rounds/(n·⌈log n⌉) (O(n log n)).
func BenchmarkTable2_LandmarkNoChirality(b *testing.B) {
	const n = 32
	var last int
	for i := 0; i < b.N; i++ {
		res := mustRun(b, dynring.Scenario{
			Size:         n,
			Landmark:     3,
			Algorithm:    "LandmarkNoChirality",
			Starts:       []int{0, 2 * n / 3},
			Orients:      []dynring.GlobalDir{dynring.CW, dynring.CCW},
			NewAdversary: dynring.Fixed(dynring.GreedyBlocking()),
		})
		if res.Terminated != 2 {
			b.Fatal("not fully terminated")
		}
		last = res.Rounds
	}
	b.ReportMetric(float64(last)/float64(n*5), "rounds/nlogn")
}

// BenchmarkTable2_Unconscious: Theorem 5. Metric: exploration rounds/n.
func BenchmarkTable2_Unconscious(b *testing.B) {
	const n = 64
	var explored int
	for i := 0; i < b.N; i++ {
		res := mustRun(b, dynring.Scenario{
			Size:             n,
			Landmark:         dynring.NoLandmark,
			Algorithm:        "UnconsciousExploration",
			Starts:           []int{0, 1},
			Orients:          []dynring.GlobalDir{dynring.CW, dynring.CCW},
			NewAdversary:     dynring.Fixed(dynring.GreedyBlocking()),
			StopWhenExplored: true,
			MaxRounds:        64*n + 64,
		})
		if !res.Explored {
			b.Fatal("not explored")
		}
		explored = res.ExploredRound + 1
	}
	b.ReportMetric(float64(explored)/float64(n), "rounds/n")
}

// BenchmarkTable3_Impossibilities replays the Theorem 9/10/11/19
// constructions.
func BenchmarkTable3_Impossibilities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mustRows(b, expt.Table3)
	}
}

// BenchmarkTable4_PTBound: Theorem 12 under the frontier-guard adversary.
// Metric: moves/n² (O(N²), quadratic lower-bound shape of Th 13).
func BenchmarkTable4_PTBound(b *testing.B) {
	const n = 32
	var moves int
	for i := 0; i < b.N; i++ {
		res := mustRun(b, dynring.Scenario{
			Size:         n,
			Landmark:     dynring.NoLandmark,
			Algorithm:    "PTBoundWithChirality",
			Starts:       []int{0, 1},
			NewAdversary: dynring.Fixed(dynring.FrontierGuarding()),
		})
		if !res.Explored || res.Terminated < 1 {
			b.Fatal("run incomplete")
		}
		moves = res.TotalMoves
	}
	b.ReportMetric(float64(moves)/float64(n*n), "moves/n2")
}

// BenchmarkTable4_PTLandmark: Theorem 14. Metric: moves/n².
func BenchmarkTable4_PTLandmark(b *testing.B) {
	const n = 32
	var moves int
	for i := 0; i < b.N; i++ {
		res := mustRun(b, dynring.Scenario{
			Size:         n,
			Landmark:     0,
			Algorithm:    "PTLandmarkWithChirality",
			Starts:       []int{1, 2},
			NewAdversary: dynring.Fixed(dynring.FrontierGuarding()),
		})
		if !res.Explored || res.Terminated < 1 {
			b.Fatal("run incomplete")
		}
		moves = res.TotalMoves
	}
	b.ReportMetric(float64(moves)/float64(n*n), "moves/n2")
}

// BenchmarkTable4_PT3Bound: Theorem 16 (three agents, no chirality).
// Metric: moves/n².
func BenchmarkTable4_PT3Bound(b *testing.B) {
	const n = 18
	var moves int
	for i := 0; i < b.N; i++ {
		res := mustRun(b, dynring.Scenario{
			Size:         n,
			Landmark:     dynring.NoLandmark,
			Algorithm:    "PTBoundNoChirality",
			Starts:       []int{0, n / 3, 2 * n / 3},
			Orients:      []dynring.GlobalDir{dynring.CW, dynring.CCW, dynring.CW},
			NewAdversary: dynring.Fixed(dynring.GreedyBlocking()),
		})
		if !res.Explored || res.Terminated < 1 {
			b.Fatal("run incomplete")
		}
		moves = res.TotalMoves
	}
	b.ReportMetric(float64(moves)/float64(n*n), "moves/n2")
}

// BenchmarkTable4_ETBound: Theorem 20. Metric: moves/n².
func BenchmarkTable4_ETBound(b *testing.B) {
	const n = 12
	var moves int
	for i := 0; i < b.N; i++ {
		res := mustRun(b, dynring.Scenario{
			Size:      n,
			Landmark:  dynring.NoLandmark,
			Algorithm: "ETBoundNoChirality",
			Starts:    []int{0, n / 3, 2 * n / 3},
			Orients:   []dynring.GlobalDir{dynring.CW, dynring.CCW, dynring.CCW},
			NewAdversary: dynring.RandomActivationFactory(0.6,
				dynring.RandomEdgesFactory(0.4)),
			Seed: int64(i) + 5,
		})
		if !res.Explored || res.Terminated < 1 {
			b.Fatal("run incomplete")
		}
		moves = res.TotalMoves
	}
	b.ReportMetric(float64(moves)/float64(n*n), "moves/n2")
}

// BenchmarkTable4_ETUnconscious: Theorem 18. Metric: exploration rounds/n.
func BenchmarkTable4_ETUnconscious(b *testing.B) {
	const n = 32
	var explored int
	for i := 0; i < b.N; i++ {
		res := mustRun(b, dynring.Scenario{
			Size:      n,
			Landmark:  dynring.NoLandmark,
			Algorithm: "ETUnconscious",
			Starts:    []int{0, n / 2},
			NewAdversary: dynring.RandomActivationFactory(0.6,
				func(int64) dynring.Adversary { return dynring.GreedyBlocking() }),
			Seed:             int64(i) + 3,
			StopWhenExplored: true,
			MaxRounds:        4000 * n,
		})
		if !res.Explored {
			b.Fatal("not explored")
		}
		explored = res.ExploredRound + 1
	}
	b.ReportMetric(float64(explored)/float64(n), "rounds/n")
}

// BenchmarkFigure2 regenerates the tight schedule diagram run.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.Figure2Diagram(32); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure22 verifies the catch tree exhaustively.
func BenchmarkFigure22(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := catchtree.Verify(32); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure9_IDs measures the ID derivation of Section 3.2.3.
func BenchmarkFigure9_IDs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if ids.Interleave(ids.FromRounds(2, 4, 0)) != 48 {
			b.Fatal("wrong ID")
		}
	}
}

// BenchmarkFigure11_Schedule measures direction-schedule evaluation.
func BenchmarkFigure11_Schedule(b *testing.B) {
	sc := ids.NewSchedule(164)
	count := 0
	for i := 0; i < b.N; i++ {
		if sc.Right(i) {
			count++
		}
	}
	_ = count
}

// BenchmarkExtension_Offline runs the offline-optimal baselines.
func BenchmarkExtension_Offline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mustRows(b, expt.Extensions)
	}
}
