package dynring

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"

	"dynring/internal/core"
	"dynring/internal/ring"
	"dynring/internal/sim"
)

// ErrNotFingerprintable is returned by Scenario.Fingerprint for scenarios
// whose identity cannot be captured as data: custom protocol factories, or
// an adversary factory without an AdversaryLabel naming it.
var ErrNotFingerprintable = errors.New("dynring: scenario is not content-addressable")

// AdversaryFactory constructs a fresh adversary for one run. Scenarios carry
// factories rather than live adversary instances so a scenario value stays
// replayable: stateful strategies (seeded randomness, alternation counters,
// recording logs) are rebuilt from scratch, with the same seed, every time
// the scenario is executed.
type AdversaryFactory func(seed int64) Adversary

// Fixed adapts a ready-made adversary instance into an AdversaryFactory that
// ignores the seed. Use it for the stateless proof strategies (GreedyBlocking,
// FrontierGuarding, PinAgent, ...); for seeded strategies prefer a factory
// that consumes the seed, so sweeps decorrelate their runs.
func Fixed(a Adversary) AdversaryFactory {
	return func(int64) Adversary { return a }
}

// RandomEdgesFactory is the seeded-per-run counterpart of RandomEdges: each
// run draws its edge removals from the scenario's own seed.
func RandomEdgesFactory(p float64) AdversaryFactory {
	return func(seed int64) Adversary { return RandomEdges(p, seed) }
}

// RandomActivationFactory is the seeded-per-run counterpart of
// RandomActivation. The edge strategy is itself a factory (nil: never remove
// an edge) and receives a seed derived from the run's seed.
func RandomActivationFactory(p float64, edges AdversaryFactory) AdversaryFactory {
	return func(seed int64) Adversary {
		var inner Adversary
		if edges != nil {
			inner = edges(seed + 1)
		}
		return RandomActivation(p, seed, inner)
	}
}

// TIntervalFactory is the seeded-per-run counterpart of TIntervalConnected:
// each run draws its phase edges from the scenario's own seed.
func TIntervalFactory(t int) AdversaryFactory {
	return func(seed int64) Adversary { return TIntervalConnected(t, seed) }
}

// RecurrentFactory builds a fresh RecurrentBlocking instance per run. The
// strategy is deterministic but stateful (it tracks the current blockage
// streak), so replayable scenarios must rebuild it rather than share one
// instance via Fixed.
func RecurrentFactory(w int) AdversaryFactory {
	return func(int64) Adversary { return RecurrentBlocking(w) }
}

// Scenario fully describes one exploration run as a plain value: topology,
// algorithm, regime, initial configuration, a-priori knowledge, dynamics and
// budget. Unlike Config it carries an adversary *constructor*, so the same
// Scenario value replays to the same Result, and it separates validation
// (Validate) from execution (Run / NewWorld).
//
// The zero value of most fields means "use the algorithm's default":
// Starts defaults to even spacing, Orients to all-CW, Model to the first
// regime of the algorithm's spec, UpperBound/ExactSize to Size, and
// MaxRounds to DefaultBudget.
type Scenario struct {
	// Name is an optional label (sweeps fill it with the grid coordinates).
	Name string
	// AdversaryLabel optionally names the dynamics; Aggregate keys on it.
	AdversaryLabel string

	// Size is the number of ring nodes (≥ 3).
	Size int
	// Landmark is the landmark node, or NoLandmark (the zero value is node
	// 0 — set NoLandmark explicitly for anonymous rings).
	Landmark int

	// Algorithm is a registry name; see Algorithms. Ignored when
	// NewProtocols is set.
	Algorithm string
	// NewProtocols optionally builds the agents directly, bypassing the
	// registry and its assumption checks. It exists for custom protocols
	// and for deliberately misusing an algorithm (the impossibility
	// experiments run chirality algorithms with mixed orientations, and ET
	// algorithms fed a wrong exact size). The factory must return fresh
	// instances on every call.
	NewProtocols func() ([]Protocol, error)

	// Model overrides the algorithm's default regime; leave ModelDefault
	// to use the first entry of its spec (FSync for custom protocols).
	Model Model
	// UpperBound is the known bound N for algorithms that require one;
	// defaults to Size.
	UpperBound int
	// ExactSize is the known exact size for algorithms that require it;
	// defaults to Size.
	ExactSize int

	// Starts are the agents' initial nodes; defaults to even spacing.
	Starts []int
	// Orients are the agents' orientations; defaults to all CW (chirality).
	Orients []GlobalDir

	// NewAdversary constructs the dynamics for one run, receiving Seed;
	// nil means an always-connected ring with full activation.
	NewAdversary AdversaryFactory
	// Seed is passed to NewAdversary; sweeps derive it per scenario.
	Seed int64

	// MaxRounds bounds the run; defaults to DefaultBudget for the
	// algorithm on a ring of Size nodes.
	MaxRounds int
	// StopWhenExplored ends the run at full coverage (useful for the
	// unconscious algorithms).
	StopWhenExplored bool
	// FairnessBound overrides the SSYNC fairness horizon (0 = default).
	FairnessBound int
	// DetectCycles enables configuration-cycle certificates when all
	// components support fingerprints.
	DetectCycles bool
	// DisableLeap forces the engine's round-by-round slow path even when
	// the run qualifies for quiescence leaping (deterministic scheduled
	// adversary, fingerprint-capable protocols, no observer). Leaping is
	// provably result-identical, so the flag exists for verification and
	// debugging; like Observer it does not affect the Result and is
	// excluded from Fingerprint.
	DisableLeap bool
	// Observer optionally receives round records (e.g. a TraceRecorder).
	// Sweeps drop it: one observer shared across concurrent runs would
	// race. An observer forces the engine's round-by-round slow path.
	Observer Observer
}

// resolved is a validated scenario with every default filled in, ready to
// assemble a World.
type resolved struct {
	ring      *ring.Ring
	spec      Algorithm // zero for custom protocol factories
	protos    []Protocol
	starts    []int
	orients   []GlobalDir
	model     Model
	maxRounds int
	// params are the normalized knowledge parameters (defaults filled in);
	// zero for custom protocol factories, which take no knowledge.
	params core.Params
}

// resolve validates s and fills in defaults. It is the single source of
// truth behind Validate, NewWorld and Run. With build=false the registry
// protocols are not constructed (validation needs only the spec); a
// NewProtocols factory is still invoked either way, since the agent count is
// known only to it.
func (s Scenario) resolve(build bool) (resolved, error) {
	return s.resolveRings(build, ring.NewWithLandmark)
}

// resolveRings is resolve with an injectable ring constructor, so a batched
// Runner can serve the (immutable) topology from its cache instead of
// rebuilding it for every scenario of a sweep.
func (s Scenario) resolveRings(build bool, newRing func(n, landmark int) (*ring.Ring, error)) (resolved, error) {
	var r resolved

	if s.NewProtocols == nil {
		spec, ok := core.Lookup(s.Algorithm)
		if !ok {
			return r, fmt.Errorf("%w: %q (known: %v)", ErrUnknownAlgorithm, s.Algorithm, core.Names())
		}
		r.spec = spec
	}

	rg, err := newRing(s.Size, s.Landmark)
	if err != nil {
		return r, err
	}
	r.ring = rg

	agents := 0
	if s.NewProtocols != nil {
		protos, err := s.NewProtocols()
		if err != nil {
			return r, err
		}
		if len(protos) == 0 {
			return r, fmt.Errorf("%w: NewProtocols returned no agents", ErrRequirement)
		}
		r.protos = protos
		agents = len(protos)
	} else {
		agents = r.spec.Agents
		if r.spec.NeedsLandmark && !rg.HasLandmark() {
			return r, fmt.Errorf("%w: %s needs a landmark node", ErrRequirement, r.spec.Name)
		}
	}

	r.starts = s.Starts
	if r.starts == nil {
		r.starts = make([]int, agents)
		for i := range r.starts {
			r.starts[i] = i * s.Size / agents
		}
	}
	if len(r.starts) != agents {
		return r, fmt.Errorf("%w: %s uses %d agents, got %d starts",
			ErrRequirement, s.algoLabel(), agents, len(r.starts))
	}
	r.orients = s.Orients
	if r.orients == nil {
		r.orients = make([]GlobalDir, agents)
		for i := range r.orients {
			r.orients[i] = CW
		}
	}
	if len(r.orients) != agents {
		return r, fmt.Errorf("%w: %s uses %d agents, got %d orientations",
			ErrRequirement, s.algoLabel(), agents, len(r.orients))
	}

	if s.NewProtocols == nil {
		if r.spec.NeedsChirality {
			for _, o := range r.orients {
				if o != r.orients[0] {
					return r, fmt.Errorf("%w: %s assumes chirality (one common orientation)",
						ErrRequirement, r.spec.Name)
				}
			}
		}
		params := core.Params{UpperBound: s.UpperBound, ExactSize: s.ExactSize}
		if params.UpperBound == 0 {
			params.UpperBound = s.Size
		}
		if params.ExactSize == 0 {
			params.ExactSize = s.Size
		}
		if r.spec.Knowledge == core.KnowUpperBound && params.UpperBound < s.Size {
			return r, fmt.Errorf("%w: bound N=%d below ring size %d", ErrRequirement, params.UpperBound, s.Size)
		}
		if r.spec.Knowledge == core.KnowExactSize && params.ExactSize != s.Size {
			return r, fmt.Errorf("%w: %s needs the exact ring size", ErrRequirement, r.spec.Name)
		}
		r.params = params
		if build {
			protos, err := core.Build(r.spec.Name, agents, params)
			if err != nil {
				return r, err
			}
			r.protos = protos
		}
	}

	r.model = s.Model
	if r.model == ModelDefault {
		if s.NewProtocols == nil {
			r.model = r.spec.Models[0]
		} else {
			r.model = FSync
		}
	}
	switch r.model {
	case FSync, SSyncNS, SSyncPT, SSyncET:
	default:
		return r, fmt.Errorf("%w: unknown model %d", ErrRequirement, int(r.model))
	}

	r.maxRounds = s.MaxRounds
	if r.maxRounds <= 0 {
		r.maxRounds = DefaultBudget(r.spec, s.Size)
	}
	return r, nil
}

// algoLabel names the scenario's algorithm for error messages.
func (s Scenario) algoLabel() string {
	if s.NewProtocols != nil {
		return "custom protocols"
	}
	return s.Algorithm
}

// Validate checks the scenario against the algorithm's assumptions without
// executing anything: registry membership, ring well-formedness, landmark
// and chirality requirements, start/orientation counts, and knowledge
// parameters. Errors wrap ErrUnknownAlgorithm or ErrRequirement.
//
// Registry protocols are not constructed; a NewProtocols factory, however,
// is invoked (and its result discarded) — the agent count the other checks
// need is known only to it.
func (s Scenario) Validate() error {
	_, err := s.resolve(false)
	return err
}

// The fingerprint encoding is versioned per model era, not globally: a
// scenario hashes under the newest version whose feature set it exercises.
// Scenarios expressible in the pre-zoo model space keep hashing under v1
// byte-for-byte (locked by TestFingerprintV1Regression), so grids submitted
// before the dynamics-model zoo landed keep hitting ringsimd caches; zoo
// scenarios hash under v2, so a future fix to multi-edge or zoo semantics
// bumps only v2 and invalidates only zoo cache entries.
//
// Bump a version whenever its encoding — or anything that changes a Result
// for the same encoded inputs, such as engine semantics for that feature
// set — changes, so stale caches can never serve results computed under
// different rules.
const (
	fingerprintVersionV1 = "dynring/scenario/v1"
	fingerprintVersionV2 = "dynring/scenario/v2"
)

// fingerprintV2Algorithms names the algorithms added with (or after) the
// dynamics-model zoo: scenarios running them hash under v2.
var fingerprintV2Algorithms = map[string]bool{
	"LandmarkFreeExactN": true,
}

// fingerprintV2AdversaryKinds names the adversary label kinds added with
// the zoo. Detection is purely syntactic (the kind prefix of the label,
// after any act() wrapper), so custom labels keep hashing under v1 exactly
// as they always have.
var fingerprintV2AdversaryKinds = map[string]bool{
	"tinterval": true,
	"capped":    true,
	"recurrent": true,
}

// fingerprintVersionFor selects the encoding version the resolved scenario
// needs: v2 when it exercises any post-v1 feature, v1 otherwise.
func (s Scenario) fingerprintVersionFor(r resolved) string {
	if fingerprintV2Algorithms[r.spec.Name] {
		return fingerprintVersionV2
	}
	if fingerprintV2AdversaryKinds[adversaryLabelKind(s.AdversaryLabel)] {
		return fingerprintVersionV2
	}
	return fingerprintVersionV1
}

// adversaryLabelKind extracts the kind prefix of an adversary label: the
// text before the first '(', after stripping one act(...)+ wrapper.
// "act(0.7)+capped(r=2)" → "capped"; labels without parameters are their
// own kind.
func adversaryLabelKind(label string) string {
	s := label
	if strings.HasPrefix(s, "act(") {
		if i := strings.Index(s, ")+"); i >= 0 {
			s = s[i+2:]
		}
	}
	if i := strings.IndexByte(s, '('); i >= 0 {
		s = s[:i]
	}
	return s
}

// Fingerprint returns a canonical 128-bit content hash (32 hex characters)
// of everything that determines the scenario's Result. By the determinism
// guarantee — adversaries rebuilt from Seed, per-scenario sweep seeds
// derived from the scenario's identity (never its grid position), wall-clock
// excluded from Result — two scenarios with equal fingerprints produce
// identical Results, which is what makes the fingerprint safe as a
// result-cache key (see the ringsimd service).
//
// The hash covers the *resolved* scenario, so spelling a default explicitly
// (UpperBound equal to Size, Starts at even spacing, Model at the
// algorithm's first regime, MaxRounds at DefaultBudget) does not change the
// fingerprint. Name, Observer and DisableLeap are excluded: none of them
// affects the Result (quiescence leaping is result-identical by
// construction, see internal/sim).
//
// Dynamics are identified by AdversaryLabel plus Seed, not by the factory
// function itself, so the label must name the strategy and all its
// parameters; labels produced by AdversarySpec.Label and sweep expansion
// satisfy this. A scenario with a NewAdversary but no label, or with a
// NewProtocols factory, is rejected with ErrNotFingerprintable; validation
// failures surface like in Validate.
func (s Scenario) Fingerprint() (string, error) {
	if s.NewProtocols != nil {
		return "", fmt.Errorf("%w: NewProtocols factories have no canonical encoding", ErrNotFingerprintable)
	}
	if s.NewAdversary != nil && s.AdversaryLabel == "" {
		return "", fmt.Errorf("%w: adversary factory without AdversaryLabel", ErrNotFingerprintable)
	}
	r, err := s.resolve(false)
	if err != nil {
		return "", err
	}
	// A nil adversary is encoded as "adv=-", outside the "adv=<len>:<label>"
	// value space, so no label (not even a literal "nil" or "none") can
	// collide with adversary absence.
	adv := "-"
	if s.NewAdversary != nil {
		adv = fmt.Sprintf("%d:%s", len(s.AdversaryLabel), s.AdversaryLabel)
	}
	h := sha256.New()
	// Variable-length strings are length-prefixed so field boundaries stay
	// unambiguous; everything else is fixed-form text.
	fmt.Fprintf(h, "%s\n", s.fingerprintVersionFor(r))
	fmt.Fprintf(h, "size=%d landmark=%d algo=%d:%s model=%d ub=%d es=%d\n",
		s.Size, s.Landmark, len(r.spec.Name), r.spec.Name, int(r.model),
		r.params.UpperBound, r.params.ExactSize)
	fmt.Fprintf(h, "starts=%v orients=%v\n", r.starts, r.orients)
	fmt.Fprintf(h, "adv=%s seed=%d max=%d stop=%t fair=%d cycles=%t\n",
		adv, s.Seed, r.maxRounds, s.StopWhenExplored, s.FairnessBound, s.DetectCycles)
	return hex.EncodeToString(h.Sum(nil)[:16]), nil
}

// simConfig assembles the engine configuration for a resolved scenario,
// constructing a fresh adversary from the factory. It is shared by NewWorld
// (which builds a World from scratch) and Runner.Run (which Resets a reused
// one).
func (s Scenario) simConfig(r resolved) sim.Config {
	var adv Adversary
	if s.NewAdversary != nil {
		adv = s.NewAdversary(s.Seed)
	}
	return sim.Config{
		Ring:          r.ring,
		Model:         r.model,
		Starts:        r.starts,
		Orients:       r.orients,
		Protocols:     r.protos,
		Adversary:     adv,
		Observer:      s.Observer,
		FairnessBound: s.FairnessBound,
	}
}

// newWorld assembles a World from a resolved scenario.
func (s Scenario) newWorld(r resolved) (*World, error) {
	return sim.NewWorld(s.simConfig(r))
}

// NewWorld validates s and assembles a World without running it, for callers
// that want to drive rounds manually via World.Step. Each call constructs
// fresh protocol and adversary instances.
func (s Scenario) NewWorld() (*World, error) {
	r, err := s.resolve(true)
	if err != nil {
		return nil, err
	}
	return s.newWorld(r)
}

// Run executes the scenario to completion.
func (s Scenario) Run() (Result, error) {
	return s.RunContext(context.Background())
}

// RunContext executes the scenario, polling ctx for cooperative
// cancellation. On cancellation it returns ctx.Err() and a zero Result.
func (s Scenario) RunContext(ctx context.Context) (Result, error) {
	r, err := s.resolve(true)
	if err != nil {
		return Result{}, err
	}
	w, err := s.newWorld(r)
	if err != nil {
		return Result{}, err
	}
	return sim.RunContext(ctx, w, sim.RunOptions{
		MaxRounds:        r.maxRounds,
		StopWhenExplored: s.StopWhenExplored,
		DetectCycles:     s.DetectCycles,
		DisableLeap:      s.DisableLeap,
	})
}
