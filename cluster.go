package dynring

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"dynring/internal/cluster"
)

// This file is the client side of a sharded ringsimd cluster: the wire
// types of the /v1/cluster and /v1/run endpoints, and fingerprint-aware
// sweep routing. Placement is computed client-side with the same
// internal/cluster ring the servers use, from a single /v1/cluster
// snapshot — the contract that makes this sound is that placement is a
// pure function of (member set, vnodes), golden-tested server-side, so a
// client and every node agree on each fingerprint's owner without any
// coordination.

// PeerStatus is one cluster member as reported by /v1/cluster (and
// /statsz). State is "alive", "suspect", "dead", "left" or "degraded" as
// seen by the reporting node; health is local opinion, placement is
// global.
type PeerStatus struct {
	URL  string `json:"url"`
	Self bool   `json:"self,omitempty"`
	// State is the probe-derived health state. Peers in any state except
	// "left" are ring members. "degraded" means alive-but-gray: the peer
	// answers probes but the reporting node's circuit breaker for it is
	// not closed (recent proxy errors, timeouts, or slow RTTs), so routed
	// work skips it until the breaker recovers.
	State string `json:"state"`
	// Breaker is the reporting node's circuit-breaker state for this peer:
	// "closed", "open" or "half_open". Absent for the self entry.
	Breaker string `json:"breaker,omitempty"`
	// Failures counts consecutive failed probes; LastSeen is the last
	// successful one (zero: never probed successfully).
	Failures int       `json:"failures,omitempty"`
	LastSeen time.Time `json:"last_seen,omitempty"`
	// QueueDepth is the peer's scheduler backlog: live for the reporting
	// node's self entry, last-gossiped for everyone else. Replicas compare
	// depths to decide when to steal an overloaded owner's work.
	QueueDepth int `json:"queue_depth,omitempty"`
}

// ClusterStatus is the /v1/cluster document: this node's view of the
// cluster. VNodes plus the non-left member URLs are sufficient to rebuild
// the placement ring exactly.
type ClusterStatus struct {
	// Enabled reports whether the node runs in cluster mode at all; a
	// standalone ringsimd serves Enabled false with an empty peer list.
	Enabled bool   `json:"enabled"`
	Self    string `json:"self,omitempty"`
	VNodes  int    `json:"vnodes,omitempty"`
	// Replicas is the cluster's replica-set size k (0 or 1: unreplicated).
	// Clients consult a fingerprint's whole replica set — Owners(fp, k) —
	// when its owner dies mid-sweep.
	Replicas int          `json:"replicas,omitempty"`
	Peers    []PeerStatus `json:"peers"`
}

// RingMembers returns the placement-ring member URLs (every peer that has
// not left), in the sorted order NewRing would impose anyway.
func (cs ClusterStatus) RingMembers() []string {
	var members []string
	for _, p := range cs.Peers {
		if p.State != "left" {
			members = append(members, p.URL)
		}
	}
	return members
}

// RunRequest is the body of POST /v1/run: execute (or serve from cache)
// one scenario on the receiving node, synchronously. It is the cluster's
// internal proxy hop — a node that does not own a fingerprint forwards it
// here — but is equally usable by external callers for one-off scenarios.
type RunRequest struct {
	Scenario ScenarioSpec `json:"scenario"`
}

// RunResponse is the document POST /v1/run answers with.
type RunResponse struct {
	Fingerprint string `json:"fingerprint"`
	// Cached reports the result was served from the node's cache tiers
	// rather than executed now.
	Cached bool    `json:"cached"`
	Result *Result `json:"result,omitempty"`
	Error  string  `json:"error,omitempty"`
	// Span is the receiving node's span for this execution (how it served
	// the scenario, and under which node name). A proxying coordinator
	// adopts it into the sweep's trace, which is how one trace ID ends up
	// spanning multiple nodes.
	Span *TraceSpan `json:"span,omitempty"`
}

// ClusterStatus fetches the node's /v1/cluster document.
func (c *Client) ClusterStatus(ctx context.Context) (ClusterStatus, error) {
	var cs ClusterStatus
	err := c.do(ctx, http.MethodGet, "/v1/cluster", nil, &cs)
	return cs, err
}

// RunScenario executes one scenario on the node (or serves it from its
// caches) via POST /v1/run, synchronously.
func (c *Client) RunScenario(ctx context.Context, spec ScenarioSpec) (RunResponse, error) {
	return c.RunScenarioTraced(ctx, spec, "")
}

// RunScenarioTraced is RunScenario carrying a trace ID: traceID (when
// non-empty) is sent in TraceHeader so the receiving node records its span
// under the caller's trace. The cluster proxy path uses this for every hop,
// with the client's TenantKey identifying the originating tenant.
func (c *Client) RunScenarioTraced(ctx context.Context, spec ScenarioSpec, traceID string) (RunResponse, error) {
	return c.RunScenarioBudgeted(ctx, spec, traceID, 0)
}

// RunScenarioBudgeted is RunScenarioTraced carrying a remaining deadline
// budget: budget (when positive) is sent in DeadlineHeader as a Go
// duration, and the receiving node bounds its execution by it. The cluster
// proxy path uses this to propagate a job's X-Dynring-Deadline across
// hops — each hop forwards only what is left of the budget, so a sweep
// with a 2s deadline can never hold a remote worker beyond those 2s no
// matter how many nodes the scenario visits. A zero or negative budget
// sends no header (the hop is bounded only by ctx).
func (c *Client) RunScenarioBudgeted(ctx context.Context, spec ScenarioSpec, traceID string, budget time.Duration) (RunResponse, error) {
	var hdr map[string]string
	if budget > 0 {
		hdr = map[string]string{DeadlineHeader: budget.String()}
	}
	var rr RunResponse
	err := c.doTraced(ctx, http.MethodPost, "/v1/run", traceID, hdr, RunRequest{Scenario: spec}, &rr)
	return rr, err
}

// peerClient derives a client for another cluster node, inheriting this
// client's transport and retry policy.
func (c *Client) peerClient(baseURL string) *Client {
	return &Client{
		BaseURL:        strings.TrimRight(baseURL, "/"),
		HTTPClient:     c.HTTPClient,
		Retries:        c.Retries,
		RetryBaseDelay: c.RetryBaseDelay,
		TenantKey:      c.TenantKey,
	}
}

// RunSweepRouted is RunSweep with cluster routing: it snapshots the
// cluster once, computes each expanded scenario's owner on the placement
// ring, and submits each owner its share of the grid directly — so every
// scenario lands on the node whose cache tiers own its fingerprint,
// executing at most once cluster-wide, with no proxy hop in the common
// path. Results are returned in grid order, exactly as RunSweep would.
//
// Degraded paths keep the sweep alive rather than precise:
//
//   - A standalone node (cluster disabled or single-member) and a grid
//     that cannot be fingerprinted or re-serialized (custom factories)
//     fall back to plain RunSweep against this client's node.
//   - Scenarios whose owner is not alive in the snapshot are submitted to
//     this client's node, which executes them locally (its own fallback).
//   - A share that fails against its owner — the peer died after the
//     snapshot, or moved — is transparently retried against this client's
//     node before the sweep is failed.
//
// onRow, when non-nil, receives each result as its share settles; unlike
// RunSweepFunc's hook the calls are NOT in grid order across shares
// (shares stream concurrently), though the returned slice always is.
//
// SubmitOptions (tenant, priority, deadline) apply to every share
// submission: each owning node admits its share under the same tenant.
func (c *Client) RunSweepRouted(ctx context.Context, spec SweepSpec, onRow func(SweepResult), opts ...SubmitOption) ([]SweepResult, error) {
	cs, err := c.ClusterStatus(ctx)
	if err != nil {
		return nil, err
	}
	members := cs.RingMembers()
	if !cs.Enabled || len(members) <= 1 {
		return c.RunSweepFunc(ctx, spec, nil, onRow, opts...)
	}
	scenarios, err := spec.ScenarioList()
	if err != nil {
		return nil, err
	}
	shares, routable := routeShares(scenarios, cs)
	if !routable {
		// Not content-addressable (custom factories, unlabelled
		// adversaries): no owner exists, so routing is meaningless.
		return c.RunSweepFunc(ctx, spec, nil, onRow, opts...)
	}

	out := make([]SweepResult, len(scenarios))
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	deliver := func(indices []int, results []SweepResult) {
		mu.Lock()
		defer mu.Unlock()
		for _, r := range results {
			if r.Index < 0 || r.Index >= len(indices) {
				continue
			}
			r.Index = indices[r.Index]
			r.Scenario = scenarios[r.Index]
			out[r.Index] = r
			if onRow != nil {
				onRow(r)
			}
		}
	}
	for target, indices := range shares {
		wg.Add(1)
		go func(target string, indices []int) {
			defer wg.Done()
			share, err := shareSpec(scenarios, indices)
			if err == nil {
				var results []SweepResult
				results, err = c.runShare(ctx, target, share, opts)
				if err != nil && target != c.BaseURL && ctx.Err() == nil {
					// The owner died or moved after the snapshot: re-route
					// each scenario through the rest of its replica set —
					// which holds its envelope and keeps the exactly-once
					// counters honest — before the coordinator executes
					// anything locally.
					results, err = c.retryShare(ctx, scenarios, indices, cs, target, opts)
				}
				if len(results) > 0 {
					deliver(indices, results)
				}
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("dynring: share of %d scenarios on %s: %w", len(indices), target, err)
				}
				mu.Unlock()
			}
		}(target, indices)
	}
	wg.Wait()
	if firstErr != nil {
		return out, firstErr
	}
	return out, nil
}

// routeShares groups scenario indices by the node each should be
// submitted to: the fingerprint's owner when alive, else the first alive
// member of its replica set (whose tiers hold the replicated envelope),
// else this client's own node. The second return is false when any
// scenario has no fingerprint (the grid is unroutable as a whole — one
// submission beats a split brain).
func routeShares(scenarios []Scenario, cs ClusterStatus) (map[string][]int, bool) {
	ring := cluster.NewRing(cs.RingMembers(), cs.VNodes)
	alive := aliveSet(cs)
	self := selfURL(cs)
	shares := make(map[string][]int)
	for i, sc := range scenarios {
		fp, err := sc.Fingerprint()
		if err != nil {
			return nil, false
		}
		target := self
		for _, o := range ring.Owners(fp, replicaCount(cs)) {
			if alive[o] {
				target = o
				break
			}
		}
		shares[target] = append(shares[target], i)
	}
	return shares, true
}

// retryShare re-routes one failed share: each of its scenarios goes to the
// first alive member of its replica set other than the failed node, and
// only scenarios with no surviving replica (or whose replica also fails)
// fall back to this client's own node. With replication enabled the
// surviving replicas hold the share's envelopes, so the retry is served
// from their tiers — zero re-executions — instead of re-executing on the
// coordinator. Returned results are indexed relative to the original
// share order, so the caller's deliver() mapping applies unchanged.
func (c *Client) retryShare(ctx context.Context, scenarios []Scenario, indices []int, cs ClusterStatus, failed string, opts []SubmitOption) ([]SweepResult, error) {
	ring := cluster.NewRing(cs.RingMembers(), cs.VNodes)
	alive := aliveSet(cs)
	groups := make(map[string][]int) // retry target → positions within indices
	for pos, i := range indices {
		fp, err := scenarios[i].Fingerprint()
		if err != nil {
			return nil, err
		}
		target := c.BaseURL
		for _, o := range ring.Owners(fp, replicaCount(cs)) {
			if o != failed && alive[o] {
				target = o
				break
			}
		}
		groups[target] = append(groups[target], pos)
	}
	out := make([]SweepResult, len(indices))
	for target, positions := range groups {
		sub := make([]int, len(positions))
		for k, pos := range positions {
			sub[k] = indices[pos]
		}
		share, err := shareSpec(scenarios, sub)
		if err != nil {
			return nil, err
		}
		results, err := c.runShare(ctx, target, share, opts)
		if err != nil && target != c.BaseURL && ctx.Err() == nil {
			// The replica died too; the coordinator is the last resort.
			results, err = c.runShare(ctx, c.BaseURL, share, opts)
		}
		if err != nil {
			return nil, err
		}
		for _, r := range results {
			if r.Index < 0 || r.Index >= len(positions) {
				continue
			}
			r.Index = positions[r.Index]
			out[r.Index] = r
		}
	}
	return out, nil
}

// aliveSet maps member URL → routable (alive, or the reporting node
// itself). Degraded peers are deliberately not routable here: the
// coordinator has breaker evidence that they are slow, so client-side
// routing sends their shares to the next replica (or the coordinator)
// exactly as routeShares does for dead peers — placement never moves,
// only the serving node does.
func aliveSet(cs ClusterStatus) map[string]bool {
	alive := make(map[string]bool, len(cs.Peers))
	for _, p := range cs.Peers {
		alive[p.URL] = p.State == "alive" || p.Self
	}
	return alive
}

// selfURL is the reporting node's URL from a /v1/cluster snapshot.
func selfURL(cs ClusterStatus) string {
	for _, p := range cs.Peers {
		if p.Self {
			return p.URL
		}
	}
	return cs.Self
}

// replicaCount normalizes a snapshot's replica-set size (pre-replication
// servers omit the field).
func replicaCount(cs ClusterStatus) int {
	if cs.Replicas < 1 {
		return 1
	}
	return cs.Replicas
}

// shareSpec builds the explicit-list SweepSpec for one owner's share.
func shareSpec(scenarios []Scenario, indices []int) (SweepSpec, error) {
	share := SweepSpec{Scenarios: make([]ScenarioSpec, len(indices))}
	for k, i := range indices {
		sp, err := scenarios[i].WireSpec()
		if err != nil {
			return SweepSpec{}, err
		}
		share.Scenarios[k] = sp
	}
	return share, nil
}

// runShare runs one share against target, reusing the full RunSweepFunc
// machinery (submission, streaming, truncation checks, abandonment).
func (c *Client) runShare(ctx context.Context, target string, share SweepSpec, opts []SubmitOption) ([]SweepResult, error) {
	return c.peerClient(target).RunSweepFunc(ctx, share, nil, nil, opts...)
}
