package dynring_test

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"dynring"
	"dynring/internal/service"
)

// bootCluster starts n in-process ringsimd nodes on loopback listeners,
// seeded with each other, and waits until every node sees all peers alive.
func bootCluster(t *testing.T, n int) ([]string, []*service.Manager, []*http.Server) {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	mgrs := make([]*service.Manager, n)
	srvs := make([]*http.Server, n)
	for i := range mgrs {
		m, err := service.New(service.Options{
			Workers:   2,
			CacheSize: 256,
			Cluster: service.ClusterOptions{
				Self:          urls[i],
				Peers:         urls,
				ProbeInterval: 25 * time.Millisecond,
				ProbeTimeout:  5 * time.Second,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := &http.Server{Handler: service.NewHandler(m)}
		go srv.Serve(lns[i])
		mgrs[i] = m
		srvs[i] = srv
		t.Cleanup(func() {
			srv.Close()
			m.Close()
		})
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, m := range mgrs {
		for {
			alive := 0
			for _, p := range m.ClusterStatus().Peers {
				if p.State == "alive" {
					alive++
				}
			}
			if alive == n {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("cluster never converged to all-alive")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return urls, mgrs, srvs
}

// clusterExecutions sums per-node execution counters.
func clusterExecutions(mgrs []*service.Manager) uint64 {
	var sum uint64
	for _, m := range mgrs {
		sum += m.Stats().Executions
	}
	return sum
}

// TestRunSweepRoutedMatchesLocal: routed execution over a 3-node cluster
// returns exactly the rows a local sweep produces, in grid order, while
// executing each scenario once cluster-wide — and a repeat through a
// different coordinator executes nothing at all.
func TestRunSweepRoutedMatchesLocal(t *testing.T) {
	urls, mgrs, _ := bootCluster(t, 3)
	ctx := context.Background()
	spec := clientSpec()

	sw, err := spec.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	local, err := sw.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	var rows atomic.Int32
	routed, err := dynring.NewClient(urls[0]).RunSweepRouted(ctx, spec, func(dynring.SweepResult) {
		rows.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(routed) != len(local) {
		t.Fatalf("routed %d rows, local %d", len(routed), len(local))
	}
	if int(rows.Load()) != len(local) {
		t.Fatalf("onRow saw %d rows, want %d", rows.Load(), len(local))
	}
	for i, r := range routed {
		if r.Err != nil {
			t.Fatalf("row %d: %v", i, r.Err)
		}
		if r.Index != i {
			t.Fatalf("row %d has Index %d — grid order broken", i, r.Index)
		}
		if fmt.Sprint(r.Result) != fmt.Sprint(local[i].Result) {
			t.Fatalf("row %d differs from local run:\n%v\n%v", i, r.Result, local[i].Result)
		}
	}
	total := uint64(len(local))
	if got := clusterExecutions(mgrs); got != total {
		t.Fatalf("cluster executed %d scenarios, want %d (exactly once)", got, total)
	}

	// The same grid through another coordinator: zero new executions.
	if _, err := dynring.NewClient(urls[1]).RunSweepRouted(ctx, spec, nil); err != nil {
		t.Fatal(err)
	}
	if got := clusterExecutions(mgrs); got != total {
		t.Fatalf("repeat executed %d new scenarios, want 0", got-total)
	}
}

// TestRunSweepRoutedStandaloneFallback: against a non-clustered node,
// RunSweepRouted degrades to a plain sweep submission.
func TestRunSweepRoutedStandaloneFallback(t *testing.T) {
	client, m := newTestService(t, service.Options{Workers: 2, CacheSize: 256})
	results, err := client.RunSweepRouted(context.Background(), clientSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil || r.Index != i {
			t.Fatalf("row %d: err=%v index=%d", i, r.Err, r.Index)
		}
	}
	if got := m.Stats().Executions; got != uint64(len(results)) {
		t.Fatalf("standalone executed %d of %d", got, len(results))
	}
}

// TestRunSweepRoutedSurvivesDeadOwner: a routed sweep whose share targets
// a peer that died after the cluster snapshot retries the share through
// the coordinator and still completes.
func TestRunSweepRoutedSurvivesDeadOwner(t *testing.T) {
	urls, mgrs, srvs := bootCluster(t, 2)
	client := dynring.NewClient(urls[0])
	cs, err := client.ClusterStatus(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Enabled || len(cs.RingMembers()) != 2 {
		t.Fatalf("cluster status = %+v", cs)
	}
	// Kill node 1 abruptly — listener down, no graceful leave — so the
	// snapshot the routed sweep takes can still list it as alive and the
	// share targeted at it must be retried through the coordinator.
	srvs[1].Close()

	results, err := client.RunSweepRouted(context.Background(), clientSpec(), nil)
	if err != nil {
		t.Fatalf("routed sweep failed after owner death: %v", err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("row %d: %v", i, r.Err)
		}
	}
	if got := mgrs[0].Stats().Executions; got != uint64(len(results)) {
		t.Fatalf("survivor executed %d of %d", got, len(results))
	}
}
