package dynring

import (
	"context"

	"dynring/internal/ring"
	"dynring/internal/sim"
)

// Runner executes scenarios back-to-back on one goroutine, reusing state
// that is invariant across runs: the simulation World (its agent table,
// visited bitmap and per-round scratch are Reset in place instead of
// reallocated) and the immutable ring topologies, cached per
// (size, landmark). A sweep worker that runs thousands of scenarios through
// one Runner therefore allocates per run only what genuinely differs
// between runs — fresh protocol instances, the adversary, and the Result.
//
// Run produces exactly the same Result as Scenario.Run for every scenario:
// reuse is invisible in the output (the engine parity golden test and the
// sweep determinism gate both execute through Runners).
//
// A Runner is NOT safe for concurrent use; give each worker its own.
// Sweep.Stream and the ringsimd service do this automatically — reach for
// an explicit Runner only when driving many scenarios by hand:
//
//	r := dynring.NewRunner()
//	for _, sc := range scenarios {
//		res, err := r.Run(ctx, sc)
//		...
//	}
type Runner struct {
	world sim.World
	rings map[ringKey]*ring.Ring
}

// ringKey identifies an immutable ring topology.
type ringKey struct {
	size     int
	landmark int
}

// NewRunner returns an empty Runner; it grows its reusable state on first
// use.
func NewRunner() *Runner {
	return &Runner{rings: make(map[ringKey]*ring.Ring)}
}

// ring returns the cached topology for (n, landmark), building it on first
// request. Rings are immutable, so sharing one instance across runs is safe.
func (r *Runner) ring(n, landmark int) (*ring.Ring, error) {
	k := ringKey{size: n, landmark: landmark}
	if rg, ok := r.rings[k]; ok {
		return rg, nil
	}
	rg, err := ring.NewWithLandmark(n, landmark)
	if err != nil {
		return nil, err
	}
	r.rings[k] = rg
	return rg, nil
}

// Run executes one scenario, reusing the Runner's world and ring cache. It
// is Scenario.RunContext with batched-execution economics: validation,
// protocol construction and the Result are per-run as always, but the
// engine state is recycled. On error the Runner stays usable — the next Run
// fully reinitializes the world.
func (r *Runner) Run(ctx context.Context, sc Scenario) (Result, error) {
	rv, err := sc.resolveRings(true, r.ring)
	if err != nil {
		return Result{}, err
	}
	if err := r.world.Reset(sc.simConfig(rv)); err != nil {
		return Result{}, err
	}
	return sim.RunContext(ctx, &r.world, sim.RunOptions{
		MaxRounds:        rv.maxRounds,
		StopWhenExplored: sc.StopWhenExplored,
		DetectCycles:     sc.DetectCycles,
	})
}
