package dynring

import (
	"context"
	"errors"

	"dynring/internal/ring"
	"dynring/internal/sim"
)

// Runner executes scenarios back-to-back on one goroutine, reusing state
// that is invariant across runs: the simulation World (its agent table,
// visited bitmap and per-round scratch are Reset in place instead of
// reallocated) and the immutable ring topologies, cached per
// (size, landmark). A sweep worker that runs thousands of scenarios through
// one Runner therefore allocates per run only what genuinely differs
// between runs — fresh protocol instances, the adversary, and the Result.
//
// Run produces exactly the same Result as Scenario.Run for every scenario:
// reuse is invisible in the output (the engine parity golden test and the
// sweep determinism gate both execute through Runners).
//
// A Runner is NOT safe for concurrent use; give each worker its own.
// Sweep.Stream and the ringsimd service do this automatically — reach for
// an explicit Runner only when driving many scenarios by hand:
//
//	r := dynring.NewRunner()
//	for _, sc := range scenarios {
//		res, err := r.Run(ctx, sc)
//		...
//	}
type Runner struct {
	world     sim.World
	rings     map[ringKey]*ring.Ring
	lastStats RunStats

	// Memo optionally attaches an in-process result memo: scenarios whose
	// memo keys match a cached entry replay the stored Result instead of
	// executing (see Memo for the key construction and its correctness
	// argument). A Memo is concurrency-safe and meant to be shared — one
	// Memo across all workers of a sweep, or across repeated sweeps.
	// Scenarios without a canonical fingerprint (NewProtocols, unlabelled
	// adversary factories) bypass the memo and execute normally.
	Memo *Memo
}

// RunStats is the engine's per-run execution accounting: how the Result was
// produced, as opposed to what it says. RoundsStepped+RoundsLeapt equals
// Result.Rounds, so the leap fast path's win is directly observable — a run
// that spends most of its horizon blocked reports a leap ratio near 1.
// Stats describe one concrete execution, not the scenario: they differ
// between the leap and slow paths (which produce identical Results), are
// zero for results replayed from a Memo or cache, and are therefore carried
// beside Results (SweepResult.Stats), never inside them.
type RunStats struct {
	// RoundsStepped counts rounds executed one by one; RoundsLeapt counts
	// rounds skipped by the quiescence-leap fast path.
	RoundsStepped int `json:"rounds_stepped"`
	RoundsLeapt   int `json:"rounds_leapt"`
	// Leaps counts committed leaps.
	Leaps int `json:"leaps"`
	// LeapProbesDisqualified counts engine-quiescent rounds whose leap
	// probe was invalidated by a fairness- or ET-forced activation.
	LeapProbesDisqualified int `json:"leap_probes_disqualified"`
	// CycleDetections counts configuration-cycle certificates (0 or 1 per
	// run, and only when Scenario.DetectCycles is set).
	CycleDetections int `json:"cycle_detections"`
}

// LeapRatio is the fraction of the run's rounds covered by leaps: 0 when
// every round was stepped (or nothing ran), approaching 1 when the run was
// dominated by provably quiescent rounds.
func (s RunStats) LeapRatio() float64 {
	total := s.RoundsStepped + s.RoundsLeapt
	if total == 0 {
		return 0
	}
	return float64(s.RoundsLeapt) / float64(total)
}

// ringKey identifies an immutable ring topology.
type ringKey struct {
	size     int
	landmark int
}

// NewRunner returns an empty Runner; it grows its reusable state on first
// use.
func NewRunner() *Runner {
	return &Runner{rings: make(map[ringKey]*ring.Ring)}
}

// ring returns the cached topology for (n, landmark), building it on first
// request. Rings are immutable, so sharing one instance across runs is safe.
func (r *Runner) ring(n, landmark int) (*ring.Ring, error) {
	k := ringKey{size: n, landmark: landmark}
	if rg, ok := r.rings[k]; ok {
		return rg, nil
	}
	rg, err := ring.NewWithLandmark(n, landmark)
	if err != nil {
		return nil, err
	}
	r.rings[k] = rg
	return rg, nil
}

// Run executes one scenario, reusing the Runner's world and ring cache. It
// is Scenario.RunContext with batched-execution economics: validation,
// protocol construction and the Result are per-run as always, but the
// engine state is recycled. On error the Runner stays usable — the next Run
// fully reinitializes the world. When a Memo is attached, Run consults it
// exactly like RunCached, discarding only the replayed-vs-executed bit.
func (r *Runner) Run(ctx context.Context, sc Scenario) (Result, error) {
	res, _, err := r.RunCached(ctx, sc)
	return res, err
}

// RunCached is Run plus provenance: the boolean reports whether the Result
// was replayed from the attached Memo (a cache hit, or another worker's
// concurrent execution of the same key) rather than executed by this call.
// Without a Memo it is always false. Replayed Results are exact — the memo
// key construction guarantees key equality implies Result identity — so the
// bit is informational (SweepResult.Cached), never a quality warning.
func (r *Runner) RunCached(ctx context.Context, sc Scenario) (Result, bool, error) {
	r.lastStats = RunStats{}
	if r.Memo == nil {
		res, err := r.run(ctx, sc)
		return res, false, err
	}
	key, err := sc.memoKey()
	if err != nil {
		if errors.Is(err, ErrNotFingerprintable) {
			res, runErr := r.run(ctx, sc)
			return res, false, runErr
		}
		// Any other memoKey failure is a validation failure: running would
		// report the same error through resolve.
		return Result{}, false, err
	}
	return r.Memo.do(ctx, key, func() (Result, error) { return r.run(ctx, sc) })
}

// LastStats returns the execution accounting of the most recent Run (or
// RunCached) call. It is zero before the first run, after an error, and for
// results replayed from the Memo — replay executes no rounds. A Runner is
// single-goroutine, so "last" is unambiguous; callers that interleave runs
// must read the stats before the next call.
func (r *Runner) LastStats() RunStats { return r.lastStats }

// run executes one scenario on the reused world, unconditionally.
func (r *Runner) run(ctx context.Context, sc Scenario) (Result, error) {
	rv, err := sc.resolveRings(true, r.ring)
	if err != nil {
		return Result{}, err
	}
	if err := r.world.Reset(sc.simConfig(rv)); err != nil {
		return Result{}, err
	}
	res, st, err := sim.RunContextStats(ctx, &r.world, sim.RunOptions{
		MaxRounds:        rv.maxRounds,
		StopWhenExplored: sc.StopWhenExplored,
		DetectCycles:     sc.DetectCycles,
		DisableLeap:      sc.DisableLeap,
	})
	if err != nil {
		return Result{}, err
	}
	r.lastStats = RunStats{
		RoundsStepped:          st.RoundsStepped,
		RoundsLeapt:            st.RoundsLeapt,
		Leaps:                  st.Leaps,
		LeapProbesDisqualified: st.LeapProbesDisqualified,
		CycleDetections:        st.CycleDetections,
	}
	return res, nil
}
