package dynring

import (
	"context"
	"strings"
	"sync"

	"dynring/internal/rescache"
)

// Memo is an in-process, fingerprint-keyed result memo for sweep execution:
// scenarios with identical memo keys execute once and replay the cached
// Result. It is the local counterpart of the ringsimd service cache, built
// on the same internal/rescache LRU, and it is safe for concurrent use — a
// single Memo is shared by all workers of a Sweep (set Sweep.Memo), or by a
// caller-held Runner across repeated sweeps (set Runner.Memo).
//
// Correctness rests on the same invariant as the service cache: equal keys
// imply identical Results. The memo key is the scenario's canonical
// Fingerprint, coarsened in exactly one provably sound way: when the
// resolved scenario's Seed cannot reach execution — no adversary at all, or
// an adversary whose canonical label kind names a factory that ignores its
// seed (greedy, capped, recurrent, the proof strategies, ...) — the Seed is
// normalized to zero first. Deterministic adversaries swept over a seed
// axis therefore collapse to one execution per cell. Seed-consuming kinds
// (random, tinterval, any act() activation wrapper) and unknown custom
// label kinds keep the Seed in the key and never collapse.
//
// Concurrent misses of one key are deduplicated (single-flight): the first
// worker executes, the rest wait and replay its Result, so a seed axis
// fanned out across workers still executes once. Failed executions are
// never stored — waiters observe the leader's failure only when their own
// context is also done; otherwise they retry as leaders, so a cancelled
// sweep cannot poison a later one.
type Memo struct {
	cache *rescache.Cache[Result]

	mu      sync.Mutex
	flights map[string]*memoFlight
}

// memoFlight is one in-flight execution of a memo key.
type memoFlight struct {
	done chan struct{} // closed when the leader settles
	res  Result
	err  error
}

// NewMemo returns a memo bounded to capacity entries (LRU-evicted). A
// non-positive capacity disables storage — every scenario executes — which
// makes Memo a no-op rather than an error, mirroring the service cache.
func NewMemo(capacity int) *Memo {
	return &Memo{
		cache:   rescache.New(capacity, copyResult),
		flights: make(map[string]*memoFlight),
	}
}

// Stats snapshots the memo's cache counters. Single-flight waiters count as
// neither hits nor misses (only cache lookups are counted), so Hits+Misses
// equals the number of Get probes, and Misses bounds the number of actual
// executions from above.
func (m *Memo) Stats() CacheStats {
	st := m.cache.Stats()
	return CacheStats{Size: st.Size, Capacity: st.Capacity, Hits: st.Hits, Misses: st.Misses}
}

// copyResult deep-copies a Result's slice fields so memo entries and flight
// results are never aliased with caller-visible values.
func copyResult(res Result) Result {
	if res.TerminatedAt != nil {
		res.TerminatedAt = append([]int(nil), res.TerminatedAt...)
	}
	if res.Moves != nil {
		res.Moves = append([]int(nil), res.Moves...)
	}
	return res
}

// do returns the memoized Result for key, executing exec on a miss. The
// boolean reports whether the Result was replayed (cache hit or another
// worker's in-flight execution) rather than produced by this call's exec.
func (m *Memo) do(ctx context.Context, key string, exec func() (Result, error)) (Result, bool, error) {
	for {
		if res, ok := m.cache.Get(key); ok {
			return res, true, nil
		}
		m.mu.Lock()
		// Re-probe the cache under the flights lock: a leader stores its
		// Result before retiring its flight, so a caller that missed before
		// the store and arrives after the retirement finds the entry here
		// instead of re-executing.
		if res, ok := m.cache.Get(key); ok {
			m.mu.Unlock()
			return res, true, nil
		}
		if f, ok := m.flights[key]; ok {
			m.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return Result{}, false, ctx.Err()
			}
			if f.err == nil {
				return copyResult(f.res), true, nil
			}
			if ctx.Err() != nil {
				return Result{}, false, ctx.Err()
			}
			// The leader failed (typically: its context was cancelled) but
			// this caller is still live — retry as a leader.
			continue
		}
		f := &memoFlight{done: make(chan struct{})}
		m.flights[key] = f
		m.mu.Unlock()

		res, err := exec()
		if err == nil {
			m.cache.Put(key, res)
			// The flight keeps its own deep copy: the value returned below
			// is owned by this caller, which may mutate its slices before a
			// parked waiter gets scheduled and takes its copy.
			f.res = copyResult(res)
		}
		f.err = err
		m.mu.Lock()
		delete(m.flights, key)
		m.mu.Unlock()
		close(f.done)
		return res, false, err
	}
}

// seedInsensitiveAdversaryKinds names the canonical adversary label kinds
// whose factories provably ignore the scenario Seed (they are built with
// Fixed or an explicitly seed-dropping constructor). A scenario using one of
// them produces the same Result for every seed, so the memo may normalize
// the seed out of its key. Seeded kinds — random, tinterval — and anything
// wrapped in act(...) are absent by design, as is every unknown custom kind:
// when in doubt the seed stays in the key.
//
// The list is part of the label contract (see Scenario.Fingerprint): a
// custom factory labelled with one of these kinds must behave like that
// kind, including ignoring its seed.
var seedInsensitiveAdversaryKinds = map[string]bool{
	"none":       true,
	"static":     true, // sweep expansion's label for scenarios without dynamics
	"greedy":     true,
	"frontier":   true,
	"pin":        true,
	"persistent": true,
	"prevent":    true,
	"capped":     true,
	"recurrent":  true,
}

// seedInsensitive reports whether the scenario's Result provably does not
// depend on Seed: the Seed's only consumer is the adversary factory, so a
// nil factory — or a canonical label kind known to drop the seed — makes
// the scenario seed-insensitive.
func (s Scenario) seedInsensitive() bool {
	if s.NewAdversary == nil {
		return true
	}
	if strings.HasPrefix(s.AdversaryLabel, "act(") {
		return false
	}
	return seedInsensitiveAdversaryKinds[adversaryLabelKind(s.AdversaryLabel)]
}

// memoKey returns the scenario's memo-cache key: its canonical Fingerprint,
// with the Seed normalized to zero first when the scenario is provably
// seed-insensitive. The coarsening is sound — two scenarios with equal memo
// keys produce identical Results — because the normalized field cannot
// reach execution. Errors are exactly Fingerprint's, including
// ErrNotFingerprintable for scenarios without a canonical encoding.
func (s Scenario) memoKey() (string, error) {
	if s.seedInsensitive() {
		s.Seed = 0
	}
	return s.Fingerprint()
}
