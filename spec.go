package dynring

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
)

// This file defines the serializable counterparts of Scenario and Sweep.
// Scenario and Sweep carry function fields (adversary factories, protocol
// constructors) and therefore cannot cross a process boundary; the *Spec
// types describe the same grids as plain JSON-encodable data. They are the
// wire format of the ringsimd service (see Client and internal/service) and
// the input format of cmd/ringsim's -server mode.
//
// A spec names its adversary by kind and parameters, and the derived
// AdversarySpec.Label encodes every parameter — so two scenarios whose
// dynamics differ in any way also differ in AdversaryLabel, which is what
// keeps Scenario.Fingerprint sound as a cache key.

// AdversarySpec is the serializable description of a built-in adversary.
// Kind selects the strategy; the remaining fields parameterize it and are
// ignored by kinds that do not use them.
type AdversarySpec struct {
	// Kind is one of the paper's strategies — none, random, greedy,
	// frontier, pin, persistent, prevent — or a dynamics-model-zoo family:
	// tinterval, capped, recurrent.
	Kind string `json:"kind"`
	// P is the edge-removal probability for Kind "random".
	P float64 `json:"p,omitempty"`
	// Edge is the removed edge for Kind "persistent".
	Edge int `json:"edge,omitempty"`
	// Pin is the targeted agent for Kind "pin".
	Pin int `json:"pin,omitempty"`
	// T is the phase length for Kind "tinterval" (T-interval connectivity:
	// the missing edge changes only every T rounds); it must be ≥ 1.
	T int `json:"t,omitempty"`
	// R is the per-round removal cap for Kind "capped" (at most R missing
	// edges per round); it must be ≥ 1.
	R int `json:"r,omitempty"`
	// W is the recurrence window for Kind "recurrent" (no edge missing for
	// more than W consecutive rounds); it must be ≥ 1.
	W int `json:"w,omitempty"`
	// Act, when in (0,1), wraps the strategy in RandomActivation with that
	// activation probability (SSYNC models). 0 or 1 leaves every agent
	// active in every round.
	Act float64 `json:"act,omitempty"`
}

// Label renders the spec as a canonical, parameter-bearing name. It keys
// aggregation cells and — via Scenario.AdversaryLabel — feeds
// Scenario.Fingerprint, so it must (and does) encode every parameter that
// changes the dynamics.
func (a AdversarySpec) Label() string {
	var l string
	switch a.Kind {
	case "random":
		l = fmt.Sprintf("random(p=%g)", a.P)
	case "pin":
		l = fmt.Sprintf("pin(%d)", a.Pin)
	case "persistent":
		l = fmt.Sprintf("persistent(%d)", a.Edge)
	case "tinterval":
		l = fmt.Sprintf("tinterval(T=%d)", a.T)
	case "capped":
		l = fmt.Sprintf("capped(r=%d)", a.R)
	case "recurrent":
		l = fmt.Sprintf("recurrent(w=%d)", a.W)
	default:
		l = a.Kind
	}
	if a.Act > 0 && a.Act < 1 {
		l = fmt.Sprintf("act(%g)+%s", a.Act, l)
	}
	return l
}

// Factory builds the adversary factory the spec describes. Seeded strategies
// consume the per-scenario seed; the stateless proof strategies ignore it.
// Parameters that can only be range-checked against a concrete scenario
// (Pin vs agent count, Edge vs ring size) are validated for sign here; the
// ringsimd service additionally isolates any run-time fault to its own
// scenario row.
func (a AdversarySpec) Factory() (AdversaryFactory, error) {
	if a.Pin < 0 {
		return nil, fmt.Errorf("dynring: adversary pin %d is negative", a.Pin)
	}
	if a.Edge < 0 {
		return nil, fmt.Errorf("dynring: adversary edge %d is negative", a.Edge)
	}
	// 0 is the JSON zero value ("unset": full activation), 1 is explicit
	// full activation. Anything outside [0,1] is rejected rather than
	// silently running fully active — that would invert the dynamics.
	if a.Act < 0 || a.Act > 1 {
		return nil, fmt.Errorf("dynring: adversary act %g outside [0,1]", a.Act)
	}
	var base AdversaryFactory
	switch a.Kind {
	case "none":
		base = Fixed(NoAdversary())
	case "random":
		base = RandomEdgesFactory(a.P)
	case "greedy":
		base = Fixed(GreedyBlocking())
	case "frontier":
		base = Fixed(FrontierGuarding())
	case "pin":
		base = Fixed(PinAgent(a.Pin))
	case "persistent":
		base = Fixed(KeepEdgeRemoved(a.Edge))
	case "prevent":
		base = Fixed(PreventMeetings())
	case "tinterval":
		if a.T < 1 {
			return nil, fmt.Errorf("dynring: tinterval needs a phase length T ≥ 1 (got %d)", a.T)
		}
		base = TIntervalFactory(a.T)
	case "capped":
		if a.R < 1 {
			return nil, fmt.Errorf("dynring: capped needs a removal cap r ≥ 1 (got %d)", a.R)
		}
		base = Fixed(CappedRemoval(a.R))
	case "recurrent":
		if a.W < 1 {
			return nil, fmt.Errorf("dynring: recurrent needs a window w ≥ 1 (got %d)", a.W)
		}
		base = RecurrentFactory(a.W)
	default:
		return nil, fmt.Errorf("dynring: unknown adversary kind %q", a.Kind)
	}
	if a.Act > 0 && a.Act < 1 {
		return RandomActivationFactory(a.Act, base), nil
	}
	return base, nil
}

// ParseAdversary parses a canonical adversary label back into its spec —
// the inverse of AdversarySpec.Label, and the grammar behind cmd/ringsim's
// parameter-bearing -adversary/-adversaries values:
//
//	label   := [ "act(" float ")+" ] strategy
//	strategy:= "none" | "greedy" | "frontier" | "prevent"
//	         | "random(p=" float ")" | "pin(" int ")" | "persistent(" int ")"
//	         | "tinterval(T=" int ")" | "capped(r=" int ")" | "recurrent(w=" int ")"
//
// Parameter keys are matched case-insensitively. The returned spec is
// validated (ParseAdversary fails exactly when spec.Factory would), and
// round-trips: ParseAdversary(spec.Label()) reproduces the spec.
func ParseAdversary(label string) (AdversarySpec, error) {
	var spec AdversarySpec
	s := strings.TrimSpace(label)
	if strings.HasPrefix(s, "act(") {
		end := strings.Index(s, ")+")
		if end < 0 {
			return AdversarySpec{}, fmt.Errorf("dynring: adversary label %q: act(...) wrapper not closed with \")+\"", label)
		}
		v, err := strconv.ParseFloat(s[len("act("):end], 64)
		if err != nil {
			return AdversarySpec{}, fmt.Errorf("dynring: adversary label %q: bad activation probability: %v", label, err)
		}
		spec.Act = v
		s = s[end+2:]
	}
	open := strings.IndexByte(s, '(')
	if open < 0 {
		spec.Kind = s
	} else {
		if !strings.HasSuffix(s, ")") {
			return AdversarySpec{}, fmt.Errorf("dynring: adversary label %q: unbalanced parentheses", label)
		}
		spec.Kind = s[:open]
		arg := s[open+1 : len(s)-1]
		// Accept both the canonical keyed form (p=0.5, T=2) and a bare
		// value; the key, when present, must match the kind's parameter.
		key := ""
		if eq := strings.IndexByte(arg, '='); eq >= 0 {
			key = strings.ToLower(strings.TrimSpace(arg[:eq]))
			arg = arg[eq+1:]
		}
		arg = strings.TrimSpace(arg)
		checkKey := func(want string) error {
			if key != "" && key != want {
				return fmt.Errorf("dynring: adversary label %q: parameter %q, want %q", label, key, want)
			}
			return nil
		}
		var err error
		switch spec.Kind {
		case "random":
			if err = checkKey("p"); err == nil {
				spec.P, err = strconv.ParseFloat(arg, 64)
			}
		case "pin":
			if err = checkKey("pin"); err == nil {
				spec.Pin, err = strconv.Atoi(arg)
			}
		case "persistent":
			if err = checkKey("edge"); err == nil {
				spec.Edge, err = strconv.Atoi(arg)
			}
		case "tinterval":
			if err = checkKey("t"); err == nil {
				spec.T, err = strconv.Atoi(arg)
			}
		case "capped":
			if err = checkKey("r"); err == nil {
				spec.R, err = strconv.Atoi(arg)
			}
		case "recurrent":
			if err = checkKey("w"); err == nil {
				spec.W, err = strconv.Atoi(arg)
			}
		default:
			err = fmt.Errorf("dynring: unknown adversary kind %q", spec.Kind)
		}
		if err != nil {
			return AdversarySpec{}, fmt.Errorf("dynring: adversary label %q: %v", label, err)
		}
	}
	if _, err := spec.Factory(); err != nil {
		return AdversarySpec{}, err
	}
	return spec, nil
}

// ScenarioSpec is the serializable subset of Scenario: everything except
// the function-valued escape hatches (NewProtocols, a custom NewAdversary,
// Observer). See Scenario for field semantics; zero values mean "use the
// algorithm's default" exactly as there.
type ScenarioSpec struct {
	Name      string `json:"name,omitempty"`
	Size      int    `json:"size"`
	Landmark  int    `json:"landmark"`
	Algorithm string `json:"algorithm"`
	// Model is "", "default", "fsync", "ssync-ns", "ssync-pt" or "ssync-et".
	Model      string `json:"model,omitempty"`
	UpperBound int    `json:"upper_bound,omitempty"`
	ExactSize  int    `json:"exact_size,omitempty"`
	Starts     []int  `json:"starts,omitempty"`
	// Orients are "cw"/"ccw" strings.
	Orients []string `json:"orients,omitempty"`
	// Adversary describes the dynamics; nil means an always-connected ring.
	Adversary        *AdversarySpec `json:"adversary,omitempty"`
	Seed             int64          `json:"seed,omitempty"`
	MaxRounds        int            `json:"max_rounds,omitempty"`
	StopWhenExplored bool           `json:"stop_when_explored,omitempty"`
	FairnessBound    int            `json:"fairness_bound,omitempty"`
	DetectCycles     bool           `json:"detect_cycles,omitempty"`
}

// ParseModel converts a wire model name to a Model. The empty string and
// "default" map to ModelDefault.
func ParseModel(s string) (Model, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "default":
		return ModelDefault, nil
	case "fsync":
		return FSync, nil
	case "ssync-ns", "ssync/ns":
		return SSyncNS, nil
	case "ssync-pt", "ssync/pt":
		return SSyncPT, nil
	case "ssync-et", "ssync/et":
		return SSyncET, nil
	default:
		return ModelDefault, fmt.Errorf("dynring: unknown model %q", s)
	}
}

// ParseOrient converts "cw"/"ccw" to a GlobalDir.
func ParseOrient(s string) (GlobalDir, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "cw":
		return CW, nil
	case "ccw":
		return CCW, nil
	default:
		return 0, fmt.Errorf("dynring: orientation %q (want cw or ccw)", s)
	}
}

// Scenario materializes the spec into a runnable Scenario, constructing the
// adversary factory and filling AdversaryLabel with the spec's Label.
func (sp ScenarioSpec) Scenario() (Scenario, error) {
	model, err := ParseModel(sp.Model)
	if err != nil {
		return Scenario{}, err
	}
	var orients []GlobalDir
	if sp.Orients != nil {
		orients = make([]GlobalDir, len(sp.Orients))
		for i, o := range sp.Orients {
			if orients[i], err = ParseOrient(o); err != nil {
				return Scenario{}, err
			}
		}
	}
	sc := Scenario{
		Name:             sp.Name,
		Size:             sp.Size,
		Landmark:         sp.Landmark,
		Algorithm:        sp.Algorithm,
		Model:            model,
		UpperBound:       sp.UpperBound,
		ExactSize:        sp.ExactSize,
		Starts:           sp.Starts,
		Orients:          orients,
		Seed:             sp.Seed,
		MaxRounds:        sp.MaxRounds,
		StopWhenExplored: sp.StopWhenExplored,
		FairnessBound:    sp.FairnessBound,
		DetectCycles:     sp.DetectCycles,
	}
	if sp.Adversary != nil {
		if sc.NewAdversary, err = sp.Adversary.Factory(); err != nil {
			return Scenario{}, err
		}
		sc.AdversaryLabel = sp.Adversary.Label()
	}
	return sc, nil
}

// Spec converts the scenario's data fields to wire form, the inverse of
// ScenarioSpec.Scenario. Function-valued fields cannot cross the wire:
// dynamics must be described by an AdversarySpec (in the spec's Adversary
// field or a SweepSpec's adversary axis), so a scenario carrying a live
// NewAdversary or NewProtocols factory is rejected rather than silently
// stripped of its dynamics.
func (s Scenario) Spec() (ScenarioSpec, error) {
	if s.NewProtocols != nil {
		return ScenarioSpec{}, fmt.Errorf("%w: NewProtocols factories have no wire form", ErrNotFingerprintable)
	}
	if s.NewAdversary != nil {
		return ScenarioSpec{}, fmt.Errorf("%w: describe the dynamics as an AdversarySpec instead of a live factory", ErrNotFingerprintable)
	}
	sp := ScenarioSpec{
		Name:             s.Name,
		Size:             s.Size,
		Landmark:         s.Landmark,
		Algorithm:        s.Algorithm,
		UpperBound:       s.UpperBound,
		ExactSize:        s.ExactSize,
		Starts:           s.Starts,
		Seed:             s.Seed,
		MaxRounds:        s.MaxRounds,
		StopWhenExplored: s.StopWhenExplored,
		FairnessBound:    s.FairnessBound,
		DetectCycles:     s.DetectCycles,
	}
	if s.Model != ModelDefault {
		// Model.String names ("FSYNC", "SSYNC/NS", ...) round-trip through
		// ParseModel, which is case-insensitive and accepts the "/" forms.
		sp.Model = strings.ToLower(s.Model.String())
	}
	for _, o := range s.Orients {
		if o == CW {
			sp.Orients = append(sp.Orients, "cw")
		} else {
			sp.Orients = append(sp.Orients, "ccw")
		}
	}
	return sp, nil
}

// WireSpec converts the scenario to wire form like Spec, additionally
// reconstructing the AdversarySpec from a live factory's canonical
// AdversaryLabel (Spec rejects live factories outright). This is what lets
// a cluster node re-serialize a scenario it expanded from a grid and proxy
// it to the fingerprint's owner: for every built-in adversary the label
// round-trips through ParseAdversary by construction.
//
// The reconstruction leans on the label contract behind
// Scenario.Fingerprint — a factory labelled with a canonical kind must
// behave as that kind. A custom factory with a non-canonical label (or an
// unlabelled one) fails with ErrNotFingerprintable; such scenarios are
// not proxyable and execute on the node that holds them.
func (s Scenario) WireSpec() (ScenarioSpec, error) {
	if s.NewAdversary == nil {
		return s.Spec()
	}
	as, err := ParseAdversary(s.AdversaryLabel)
	if err != nil {
		return ScenarioSpec{}, fmt.Errorf("%w: adversary label %q has no wire form: %v",
			ErrNotFingerprintable, s.AdversaryLabel, err)
	}
	bare := s
	bare.NewAdversary = nil
	bare.AdversaryLabel = ""
	sp, err := bare.Spec()
	if err != nil {
		return ScenarioSpec{}, err
	}
	sp.Adversary = &as
	return sp, nil
}

// SweepSpec is the serializable counterpart of Sweep: a base scenario spec
// plus the grid axes. It deliberately has no worker knob — local callers set
// Sweep.Workers after conversion, and the ringsimd service schedules every
// job on one shared pool.
//
// Scenarios, when non-empty, switches the spec to explicit-list form: the
// job is exactly that scenario list, in order, and Base plus every axis
// must be empty (mixing the two forms is rejected — a grid silently glued
// to a list would make the job's row order ambiguous). The explicit form
// is how the cluster-routing client ships each owner its share of an
// expanded grid; axis-form specs remain the wire format for whole grids.
type SweepSpec struct {
	Base        ScenarioSpec    `json:"base"`
	Algorithms  []string        `json:"algorithms,omitempty"`
	Sizes       []int           `json:"sizes,omitempty"`
	Seeds       []int64         `json:"seeds,omitempty"`
	Adversaries []AdversarySpec `json:"adversaries,omitempty"`
	Scenarios   []ScenarioSpec  `json:"scenarios,omitempty"`
}

// ScenarioList expands the spec to its job rows, in order, handling both
// forms: explicit-list specs materialize and validate each ScenarioSpec,
// axis-form specs expand through Sweep.Scenarios. It is the single
// expansion path of the ringsimd service and the remote client, so both
// ends of the wire agree on row order by construction.
func (sp SweepSpec) ScenarioList() ([]Scenario, error) {
	if len(sp.Scenarios) == 0 {
		sw, err := sp.Sweep()
		if err != nil {
			return nil, err
		}
		return sw.Scenarios()
	}
	if len(sp.Algorithms)+len(sp.Sizes)+len(sp.Seeds)+len(sp.Adversaries) > 0 ||
		!reflect.DeepEqual(sp.Base, ScenarioSpec{}) {
		return nil, fmt.Errorf("dynring: SweepSpec mixes explicit scenarios with base/axes — use one form")
	}
	out := make([]Scenario, len(sp.Scenarios))
	for i, ss := range sp.Scenarios {
		sc, err := ss.Scenario()
		if err != nil {
			return nil, fmt.Errorf("dynring: scenarios[%d]: %w", i, err)
		}
		if err := sc.Validate(); err != nil {
			return nil, fmt.Errorf("dynring: scenarios[%d]: %w", i, err)
		}
		out[i] = sc
	}
	return out, nil
}

// Sweep materializes the spec. Axis expansion and validation still happen in
// Sweep.Scenarios, so an invalid grid is reported there, not here.
// Explicit-list specs have no Sweep form; use ScenarioList.
func (sp SweepSpec) Sweep() (Sweep, error) {
	if len(sp.Scenarios) > 0 {
		return Sweep{}, fmt.Errorf("dynring: explicit-list SweepSpec has no axis form — expand with ScenarioList")
	}
	base, err := sp.Base.Scenario()
	if err != nil {
		return Sweep{}, err
	}
	sw := Sweep{
		Base:       base,
		Algorithms: sp.Algorithms,
		Sizes:      sp.Sizes,
		Seeds:      sp.Seeds,
	}
	for _, as := range sp.Adversaries {
		f, err := as.Factory()
		if err != nil {
			return Sweep{}, err
		}
		sw.Adversaries = append(sw.Adversaries, SweepAdversary{Name: as.Label(), New: f})
	}
	return sw, nil
}
