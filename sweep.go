package dynring

import (
	"context"
	"fmt"
	"sort"
	"time"

	"dynring/internal/sweep"
)

// SweepAdversary is one entry of a sweep's adversary axis: a display name
// (it keys aggregation) and the factory that builds a fresh instance per
// scenario.
type SweepAdversary struct {
	Name string
	New  AdversaryFactory
}

// Sweep expands a base scenario along one or more axes into a scenario grid
// and executes it concurrently. Empty axes collapse to the base scenario's
// own value, so a Sweep with no axes set runs the base scenario once.
//
// Execution is deterministic: each scenario derives its own seed from the
// seed-axis value and its identity (algorithm, size, adversary label) —
// never from its grid position — adversaries are built fresh per run, and
// results stream in grid order. Two sweeps of the same grid therefore
// produce identical results (and identical Aggregate output) regardless of
// worker count, and two *overlapping* grids assign their shared scenarios
// identical seeds and fingerprints, so a ringsimd cache serves the overlap
// without recomputation.
type Sweep struct {
	// Base is the scenario template. Its Observer is dropped during
	// expansion: one observer shared across concurrent runs would race.
	Base Scenario
	// Algorithms, Sizes, Seeds and Adversaries are the grid axes, expanded
	// outermost (Algorithms) to innermost (Seeds).
	Algorithms  []string
	Sizes       []int
	Seeds       []int64
	Adversaries []SweepAdversary
	// Workers bounds the worker pool; non-positive means runtime.NumCPU().
	Workers int
	// Memo optionally attaches an in-process result memo shared by all
	// workers: scenarios with identical memo keys — repeats within this
	// grid, overlaps with any earlier sweep run against the same Memo, and
	// seed-axis copies of seed-insensitive scenarios — execute once and
	// replay the cached Result (delivered with Cached set). Replay is
	// exact by the memo-key contract, so aggregation and determinism
	// guarantees are unaffected. Nil means every scenario executes.
	Memo *Memo
}

// SweepResult pairs one scenario of the grid with its outcome. Exactly one
// of Result/Err is meaningful; Err carries validation or engine failures
// and ctx.Err() for runs cancelled mid-flight. Wall is the run's wall-clock
// time — the only non-deterministic field, which is why Aggregate ignores
// it.
type SweepResult struct {
	// Index is the scenario's position in grid order.
	Index    int
	Scenario Scenario
	Result   Result
	Err      error
	Wall     time.Duration
	// Cached reports that the Result was replayed from the sweep's Memo
	// (a hit, or another worker's concurrent execution of the same key)
	// instead of executed for this row. Replayed Results are identical to
	// executed ones; like Wall, Cached is provenance, not payload, and is
	// ignored by Aggregate.
	Cached bool
	// Stats is the engine's execution accounting for this row (rounds
	// stepped vs leapt, see RunStats). Like Wall and Cached it describes
	// how the row ran, not what it computed: it is zero for replayed rows
	// and for rows executed through StreamFunc or a remote service, and is
	// ignored by Aggregate.
	Stats RunStats
}

// Scenarios expands the grid into concrete, validated scenarios in grid
// order. Every scenario is labelled with its coordinates and carries a
// deterministically derived seed; invalid combinations abort the expansion
// with a descriptive error, before anything runs.
func (s Sweep) Scenarios() ([]Scenario, error) {
	algos := s.Algorithms
	if len(algos) == 0 {
		algos = []string{s.Base.Algorithm}
	}
	sizes := s.Sizes
	if len(sizes) == 0 {
		sizes = []int{s.Base.Size}
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []int64{s.Base.Seed}
	}
	advs := s.Adversaries
	if len(advs) == 0 {
		label := s.Base.AdversaryLabel
		if label == "" && s.Base.NewAdversary == nil {
			// The absence of dynamics is canonical, so it may be named.
			// A custom unlabeled factory must NOT be given an invented
			// label ("base"): two different factories would then expand to
			// identical AdversaryLabels and hence identical Fingerprints,
			// letting a fingerprint-keyed cache serve one factory's Results
			// for the other. Leaving the label empty keeps such scenarios
			// runnable but not content-addressable (ErrNotFingerprintable).
			label = "static"
		}
		advs = []SweepAdversary{{Name: label, New: s.Base.NewAdversary}}
	}

	out := make([]Scenario, 0, len(algos)*len(sizes)*len(advs)*len(seeds))
	for _, algo := range algos {
		for _, size := range sizes {
			for _, adv := range advs {
				for _, seed := range seeds {
					sc := s.Base
					sc.Algorithm = algo
					sc.Size = size
					sc.NewAdversary = adv.New
					sc.AdversaryLabel = adv.Name
					sc.Seed = sweep.SeedFor(seed, algo, size, adv.Name)
					sc.Observer = nil
					sc.Name = fmt.Sprintf("%s/n=%d/%s/seed=%d", algo, size, adv.Name, seed)
					if err := sc.Validate(); err != nil {
						return nil, fmt.Errorf("sweep scenario %s: %w", sc.Name, err)
					}
					out = append(out, sc)
				}
			}
		}
	}
	return out, nil
}

// ScenarioRunner executes one expanded scenario of a sweep. It is the
// job-level hook of StreamFunc: implementations can wrap
// Scenario.RunContext with caching, instrumentation or remote dispatch.
type ScenarioRunner func(ctx context.Context, sc Scenario) (Result, error)

// cachedRunner is the internal per-worker execution hook: ScenarioRunner
// plus the replayed-from-memo bit that fills SweepResult.Cached and the
// engine accounting that fills SweepResult.Stats.
type cachedRunner func(ctx context.Context, sc Scenario) (Result, RunStats, bool, error)

// Stream expands the grid and executes it on a bounded worker pool,
// delivering results on the returned channel in grid order. The channel is
// closed when the grid is exhausted or ctx is cancelled; scenarios cancelled
// mid-run surface with Err == ctx.Err(), scenarios never started are simply
// not delivered. Expansion errors are reported up front, before any run.
//
// Execution is batched: each worker owns a Runner, so consecutive scenarios
// on one worker reuse the engine's allocations (see Runner), and when the
// sweep carries a Memo every worker's Runner shares it. Results are
// identical to running every scenario through Scenario.RunContext.
func (s Sweep) Stream(ctx context.Context) (<-chan SweepResult, error) {
	return s.stream(ctx, func() cachedRunner {
		r := NewRunner()
		r.Memo = s.Memo
		return func(ctx context.Context, sc Scenario) (Result, RunStats, bool, error) {
			res, cached, err := r.RunCached(ctx, sc)
			return res, r.LastStats(), cached, err
		}
	})
}

// StreamFunc is Stream with a caller-supplied runner: every expanded
// scenario is executed through run instead of a per-worker Runner, keeping
// the grid expansion, worker pool and ordered delivery. It is the hook for
// interposing a result cache (the contract the ringsimd service builds on:
// scenarios with equal Fingerprints may share a Result), metrics, or any
// other per-run middleware. run must be safe for concurrent use. The
// sweep's Memo is not consulted — caching is the hook's business here —
// and every delivered result has Cached unset.
func (s Sweep) StreamFunc(ctx context.Context, run ScenarioRunner) (<-chan SweepResult, error) {
	return s.stream(ctx, func() cachedRunner {
		return func(ctx context.Context, sc Scenario) (Result, RunStats, bool, error) {
			res, err := run(ctx, sc)
			return res, RunStats{}, false, err
		}
	})
}

// stream is the shared engine of Stream and StreamFunc: newRun is invoked
// once per worker goroutine, so it can hand each worker private reusable
// state (a Runner) or a shared concurrency-safe hook.
func (s Sweep) stream(ctx context.Context, newRun func() cachedRunner) (<-chan SweepResult, error) {
	scenarios, err := s.Scenarios()
	if err != nil {
		return nil, err
	}
	ch := make(chan SweepResult)
	go func() {
		defer close(ch)
		_ = sweep.OrderedStates(ctx, len(scenarios), s.Workers,
			newRun,
			func(ctx context.Context, run cachedRunner, i int) SweepResult {
				start := time.Now()
				res, stats, cached, err := run(ctx, scenarios[i])
				return SweepResult{
					Index:    i,
					Scenario: scenarios[i],
					Result:   res,
					Err:      err,
					Wall:     time.Since(start),
					Cached:   cached,
					Stats:    stats,
				}
			},
			func(_ int, v SweepResult) bool {
				select {
				case ch <- v:
					return true
				case <-ctx.Done():
					return false
				}
			})
	}()
	return ch, nil
}

// Run executes the whole grid and collects the results in grid order. On
// cancellation it returns the results delivered so far together with
// ctx.Err().
func (s Sweep) Run(ctx context.Context) ([]SweepResult, error) {
	ch, err := s.Stream(ctx)
	if err != nil {
		return nil, err
	}
	var out []SweepResult
	for r := range ch {
		out = append(out, r)
	}
	return out, ctx.Err()
}

// AggKey identifies one cell of an aggregation: every axis except the seed,
// which is what aggregation averages over.
type AggKey struct {
	Algorithm string
	Size      int
	Adversary string
}

// AggRow summarizes all runs of one (algorithm, size, adversary) cell.
// Every field is a deterministic function of the runs' Results, so two
// sweeps of the same grid aggregate byte-identically regardless of worker
// count; wall-clock times are deliberately excluded.
type AggRow struct {
	Key AggKey
	// Runs counts scenarios in the cell; Errors those that failed.
	Runs   int
	Errors int
	// Outcomes counts finished runs per outcome label. Aggregate guarantees
	// it is non-nil for every row — empty, not nil, when every run in the
	// cell errored — so JSON consumers always see an object.
	Outcomes map[string]int
	// Explored counts runs that achieved full coverage.
	Explored int
	// MeanRounds/MaxRounds and MeanMoves/MaxMoves aggregate over finished
	// (non-error) runs.
	MeanRounds float64
	MaxRounds  int
	MeanMoves  float64
	MaxMoves   int
	// MeanTerminated is the average number of terminated agents.
	MeanTerminated float64
}

// String renders the row for terminal output.
func (r AggRow) String() string {
	labels := make([]string, 0, len(r.Outcomes))
	for l := range r.Outcomes {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	outcomes := ""
	for _, l := range labels {
		outcomes += fmt.Sprintf(" %s=%d", l, r.Outcomes[l])
	}
	return fmt.Sprintf("%-30s n=%-4d %-12s runs=%-4d errors=%d explored=%-4d rounds μ=%.1f max=%d moves μ=%.1f max=%d term μ=%.1f outcomes:%s",
		r.Key.Algorithm, r.Key.Size, r.Key.Adversary, r.Runs, r.Errors, r.Explored,
		r.MeanRounds, r.MaxRounds, r.MeanMoves, r.MaxMoves, r.MeanTerminated, outcomes)
}

// Aggregate folds sweep results into one row per (algorithm, size,
// adversary) cell, sorted by that key. Pass the full result slice of Run,
// or accumulate a Stream into a slice first.
func Aggregate(results []SweepResult) []AggRow {
	cells := make(map[AggKey]*AggRow)
	var keys []AggKey
	for _, r := range results {
		k := AggKey{
			Algorithm: r.Scenario.Algorithm,
			Size:      r.Scenario.Size,
			Adversary: r.Scenario.AdversaryLabel,
		}
		row, ok := cells[k]
		if !ok {
			row = &AggRow{Key: k, Outcomes: make(map[string]int)}
			cells[k] = row
			keys = append(keys, k)
		}
		row.Runs++
		if r.Err != nil {
			row.Errors++
			continue
		}
		row.Outcomes[r.Result.Outcome.String()]++
		if r.Result.Explored {
			row.Explored++
		}
		row.MeanRounds += float64(r.Result.Rounds)
		if r.Result.Rounds > row.MaxRounds {
			row.MaxRounds = r.Result.Rounds
		}
		row.MeanMoves += float64(r.Result.TotalMoves)
		if r.Result.TotalMoves > row.MaxMoves {
			row.MaxMoves = r.Result.TotalMoves
		}
		row.MeanTerminated += float64(r.Result.Terminated)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Algorithm != b.Algorithm {
			return a.Algorithm < b.Algorithm
		}
		if a.Size != b.Size {
			return a.Size < b.Size
		}
		return a.Adversary < b.Adversary
	})
	out := make([]AggRow, 0, len(keys))
	for _, k := range keys {
		row := cells[k]
		if done := row.Runs - row.Errors; done > 0 {
			row.MeanRounds /= float64(done)
			row.MeanMoves /= float64(done)
			row.MeanTerminated /= float64(done)
		}
		out = append(out, *row)
	}
	return out
}
