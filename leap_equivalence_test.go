package dynring_test

import (
	"math/rand"
	"reflect"
	"testing"

	"dynring"
)

// leapEquivalenceAdversaries is the full zoo parameterization grid of the
// parity corpus plus the deterministic proof strategies — every built-in
// adversary family that advertises a schedule (and one that does not, as a
// control: random stays slow-path on both sides by construction).
func leapEquivalenceAdversaries(t testing.TB) []dynring.SweepAdversary {
	t.Helper()
	specs := []dynring.AdversarySpec{
		{Kind: "none"},
		{Kind: "greedy"},
		{Kind: "frontier"},
		{Kind: "pin", Pin: 0},
		{Kind: "persistent", Edge: 1},
		{Kind: "tinterval", T: 1},
		{Kind: "tinterval", T: 2},
		{Kind: "tinterval", T: 4},
		{Kind: "capped", R: 1},
		{Kind: "capped", R: 2},
		{Kind: "capped", R: 3},
		{Kind: "recurrent", W: 1},
		{Kind: "recurrent", W: 3},
	}
	out := make([]dynring.SweepAdversary, 0, len(specs))
	for _, spec := range specs {
		f, err := spec.Factory()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, dynring.SweepAdversary{Name: spec.Label(), New: f})
	}
	return out
}

// TestLeapSlowEquivalenceProperty is the leap fast path's property test:
// for every zoo adversary parameterization × every registered algorithm ×
// 20 pseudo-random seeds, running with quiescence leaping enabled (the
// default) and disabled must produce deeply equal Results. The budget is
// capped so fully blocked scenarios exercise the horizon outcome (the
// leap's primary target) without making the slow side of the comparison
// take minutes.
func TestLeapSlowEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260730))
	seeds := make([]int64, 20)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}

	var algos []string
	for _, spec := range dynring.Algorithms() {
		algos = append(algos, spec.Name)
	}
	advs := leapEquivalenceAdversaries(t)

	pairs, leapWins := 0, 0
	for _, algo := range algos {
		for _, adv := range advs {
			for _, seed := range seeds {
				sc := dynring.Scenario{
					Size:      8,
					Landmark:  0, // satisfies landmark algorithms; harmless otherwise
					Algorithm: algo,
					Seed:      seed,
					MaxRounds: 4000,
					// AdversaryLabel participates in the fingerprint only;
					// here it documents the grid cell in failure output.
					AdversaryLabel: adv.Name,
					NewAdversary:   adv.New,
				}
				fast, err := sc.Run()
				if err != nil {
					t.Fatalf("%s/%s/seed=%d: leap run: %v", algo, adv.Name, seed, err)
				}
				slow := sc
				slow.DisableLeap = true
				want, err := slow.Run()
				if err != nil {
					t.Fatalf("%s/%s/seed=%d: slow run: %v", algo, adv.Name, seed, err)
				}
				if !reflect.DeepEqual(fast, want) {
					t.Fatalf("%s/%s/seed=%d: leap diverged from slow path:\n leap %+v\n slow %+v",
						algo, adv.Name, seed, fast, want)
				}
				pairs++
				if fast.Outcome == dynring.OutcomeHorizon {
					leapWins++
				}
			}
		}
	}
	if pairs < len(algos)*len(advs)*len(seeds) {
		t.Fatalf("ran %d pairs, expected %d", pairs, len(algos)*len(advs)*len(seeds))
	}
	t.Logf("verified %d leap/slow pairs (%d horizon-bounded, the leap's target shape)", pairs, leapWins)
}
