// Package dynring is a laboratory for live (distributed, on-line)
// exploration of dynamic rings, reproducing "Live Exploration of Dynamic
// Rings" (Di Luna, Dobrev, Flocchini, Santoro; ICDCS 2016).
//
// It simulates teams of anonymous mobile agents on a 1-interval-connected
// ring — a ring from which an adversary may remove one edge per round —
// under the paper's Look–Compute–Move semantics, and ships every algorithm
// the paper presents, every adversary its impossibility proofs construct,
// and a harness that regenerates its feasibility and complexity results.
//
// Beyond the paper it carries a dynamics-model zoo drawn from the related
// work: T-interval-connected schedules (TIntervalConnected), capped
// multi-edge removal (CappedRemoval, via the MultiEdgeAdversary extension),
// δ-recurrent blocking (RecurrentBlocking), and a landmark-free exploration
// algorithm after Das–Bose–Sau 2021 (registry name "LandmarkFreeExactN").
// See docs/ARCHITECTURE.md for the paper-to-code map.
//
// Quick start:
//
//	res, err := dynring.Run(dynring.Config{
//		Size:      12,
//		Landmark:  0,
//		Algorithm: "LandmarkWithChirality",
//		Adversary: dynring.RandomEdges(0.5, 42),
//	})
//
// See Algorithms for the registry and the examples directory for complete
// programs.
package dynring

import (
	"errors"

	"dynring/internal/adversary"
	"dynring/internal/agent"
	"dynring/internal/core"
	"dynring/internal/ring"
	"dynring/internal/sim"
	"dynring/internal/trace"
)

// Re-exported model types. The engine lives in internal packages; these
// aliases form the public surface.
type (
	// Model selects the synchrony/transport regime (FSync, SSyncNS,
	// SSyncPT, SSyncET).
	Model = sim.Model
	// Adversary controls the activation schedule and the missing edge.
	Adversary = sim.Adversary
	// MultiEdgeAdversary is the optional Adversary extension for the
	// capped-removal dynamics: implement it to remove several edges per
	// round (the engine then consults MissingEdges instead of MissingEdge).
	MultiEdgeAdversary = sim.MultiAdversary
	// ScheduledAdversary is the optional Adversary extension behind the
	// engine's quiescence-leaping fast path: a deterministic adversary
	// announces via NextChange the next round its behaviour may change, so
	// the engine can skip proven no-progress rounds in O(1). All built-in
	// deterministic strategies implement it. See the sim package contract
	// for the purity window an implementation must respect.
	ScheduledAdversary = sim.ScheduledAdversary
	// Intent is an active agent's resolved decision, shown to adversaries.
	Intent = sim.Intent
	// World is the live simulation state passed to adversaries.
	World = sim.World
	// Result summarizes a finished run.
	Result = sim.Result
	// Outcome classifies how a run ended.
	Outcome = sim.Outcome
	// Observer receives one record per completed round.
	Observer = sim.Observer
	// RoundRecord describes one completed round.
	RoundRecord = sim.RoundRecord
	// AgentSnapshot is an agent's public state after a round.
	AgentSnapshot = sim.AgentSnapshot
	// Protocol is the behaviour an agent executes; implement it to plug in
	// custom algorithms.
	Protocol = agent.Protocol
	// View is an agent's Look snapshot.
	View = agent.View
	// Decision is an agent's per-round decision.
	Decision = agent.Decision
	// Dir is an agent-relative direction.
	Dir = agent.Dir
	// GlobalDir is a global direction (CW or CCW), used for orientations.
	GlobalDir = ring.GlobalDir
	// TraceRecorder collects rounds and renders ASCII space–time diagrams.
	TraceRecorder = trace.Recorder
	// TraceOptions tune diagram rendering.
	TraceOptions = trace.RenderOptions
	// Algorithm describes a registered protocol: assumptions, guarantees
	// and complexity, as claimed by the paper.
	Algorithm = core.Spec
)

// Synchrony and transport models. ModelDefault is the explicit "use the
// algorithm's default regime" sentinel — it is the zero value of Model, so
// a Config or Scenario that leaves Model unset selects the first entry of
// the algorithm's spec.
const (
	ModelDefault = sim.ModelDefault
	FSync        = sim.FSync
	SSyncNS      = sim.SSyncNS
	SSyncPT      = sim.SSyncPT
	SSyncET      = sim.SSyncET
)

// Orientation constants: an agent's private right maps to CW or CCW.
const (
	CW  = ring.CW
	CCW = ring.CCW
)

// Sentinels.
const (
	// NoLandmark marks an anonymous ring.
	NoLandmark = ring.NoLandmark
	// NoEdge is an adversary's "remove nothing" answer.
	NoEdge = sim.NoEdge
	// NeverChanges is a ScheduledAdversary's NextChange answer for
	// strategies that are pure functions of the configuration.
	NeverChanges = sim.NeverChanges
)

// Run outcomes.
const (
	OutcomeAllTerminated = sim.OutcomeAllTerminated
	OutcomeHorizon       = sim.OutcomeHorizon
	OutcomeExplored      = sim.OutcomeExplored
	OutcomeCycle         = sim.OutcomeCycle
)

// Config describes one exploration run.
type Config struct {
	// Size is the number of ring nodes (≥ 3).
	Size int
	// Landmark is the landmark node, or NoLandmark (the default zero value
	// is node 0 — set NoLandmark explicitly for anonymous rings).
	Landmark int
	// Algorithm is a registry name; see Algorithms.
	Algorithm string
	// Model overrides the algorithm's default regime (first entry of its
	// spec). Usually left zero.
	Model Model
	// UpperBound is the known bound N for algorithms that require one;
	// defaults to Size.
	UpperBound int
	// ExactSize is the known exact size for algorithms that require it;
	// defaults to Size.
	ExactSize int
	// Starts are the agents' initial nodes; defaults to even spacing.
	Starts []int
	// Orients are the agents' orientations; defaults to all CW (chirality).
	Orients []GlobalDir
	// Adversary controls dynamics; nil means an always-connected ring.
	Adversary Adversary
	// MaxRounds bounds the run; defaults to a generous per-algorithm
	// budget.
	MaxRounds int
	// StopWhenExplored ends the run at full coverage (useful for the
	// unconscious algorithms). Terminating algorithms usually leave it
	// false to observe termination.
	StopWhenExplored bool
	// FairnessBound overrides the SSYNC fairness horizon (0 = default).
	FairnessBound int
	// Observer optionally receives round records (e.g. a TraceRecorder).
	Observer Observer
	// DetectCycles enables configuration-cycle certificates when all
	// components support fingerprints.
	DetectCycles bool
}

// Errors returned by Run.
var (
	ErrUnknownAlgorithm = errors.New("dynring: unknown algorithm")
	ErrRequirement      = errors.New("dynring: configuration violates the algorithm's assumptions")
)

// Scenario converts the legacy single-shot configuration into the
// Scenario/Sweep v1 form. The live adversary instance, if any, is wrapped
// via Fixed — replaying the scenario therefore reuses that instance; build
// new Config values (or real AdversaryFactory scenarios) for independent
// replays of stateful adversaries.
func (cfg Config) Scenario() Scenario {
	s := Scenario{
		Size:             cfg.Size,
		Landmark:         cfg.Landmark,
		Algorithm:        cfg.Algorithm,
		Model:            cfg.Model,
		UpperBound:       cfg.UpperBound,
		ExactSize:        cfg.ExactSize,
		Starts:           cfg.Starts,
		Orients:          cfg.Orients,
		MaxRounds:        cfg.MaxRounds,
		StopWhenExplored: cfg.StopWhenExplored,
		FairnessBound:    cfg.FairnessBound,
		DetectCycles:     cfg.DetectCycles,
		Observer:         cfg.Observer,
	}
	if cfg.Adversary != nil {
		s.NewAdversary = Fixed(cfg.Adversary)
	}
	return s
}

// Run executes one exploration run described by cfg. It is a thin wrapper
// over cfg.Scenario().Run(); new code should use Scenario (and Sweep for
// batches) directly.
func Run(cfg Config) (Result, error) {
	return cfg.Scenario().Run()
}

// NewWorld validates cfg and assembles a World without running it, for
// callers that want to drive rounds manually via World.Step. It is a thin
// wrapper over cfg.Scenario().NewWorld().
func NewWorld(cfg Config) (*World, error) {
	return cfg.Scenario().NewWorld()
}

// DefaultBudget returns a generous round budget for the algorithm's claimed
// complexity on a ring of size n.
func DefaultBudget(spec Algorithm, n int) int {
	switch spec.Name {
	case "KnownNNoChirality":
		return 3*n + 16
	case "StartFromLandmarkNoChirality", "LandmarkNoChirality":
		return 8000*n + 8000
	case "PTBoundWithChirality", "PTLandmarkWithChirality",
		"PTBoundNoChirality", "PTLandmarkNoChirality", "ETBoundNoChirality":
		return 900*n*n + 9000
	case "LandmarkFreeExactN":
		return 200*n*n + 8000
	default:
		return 200*n + 4000
	}
}

// Algorithms returns the registry of the paper's protocols, sorted by name.
func Algorithms() []Algorithm { return core.All() }

// LookupAlgorithm returns the spec registered under name.
func LookupAlgorithm(name string) (Algorithm, bool) { return core.Lookup(name) }

// NewTrace returns a recorder for a ring of n nodes; pass it as
// Config.Observer and render with its Render method.
func NewTrace(n int) *TraceRecorder { return trace.NewRecorder(n) }

// Built-in adversaries. Custom strategies implement the Adversary
// interface directly.

// NoAdversary keeps the ring static and everyone active.
func NoAdversary() Adversary { return adversary.None{} }

// RandomEdges removes a uniformly random edge with probability p each round.
func RandomEdges(p float64, seed int64) Adversary { return adversary.NewRandomEdge(p, seed) }

// RandomActivation activates each agent independently with probability p
// (never yielding an empty set) and delegates edge removal to edges (nil:
// never remove). Only meaningful for the SSYNC models.
func RandomActivation(p float64, seed int64, edges Adversary) Adversary {
	return adversary.NewRandomActivation(p, seed, edges)
}

// KeepEdgeRemoved removes the same edge in every round.
func KeepEdgeRemoved(edge int) Adversary { return adversary.PersistentEdge{Edge: edge} }

// PinAgent always removes the edge the given agent is about to traverse
// (Observation 1's strategy).
func PinAgent(id int) Adversary { return adversary.TargetAgent{Agent: id} }

// GreedyBlocking always removes an edge whose traversal would reach an
// unvisited node — a strong heuristic worst case.
func GreedyBlocking() Adversary { return adversary.GreedyBlocker{} }

// FrontierGuarding blocks the highest-id agent about to reach an unvisited
// node: the strategy behind the paper's Ω(N·n) move lower bound
// (Figures 15/16).
func FrontierGuarding() Adversary { return adversary.FrontierGuard{} }

// PreventMeetings removes an edge only when two agents would otherwise end
// a round on the same node (Observation 2's strategy).
func PreventMeetings() Adversary { return adversary.PreventMeeting{} }

// The dynamics-model zoo: parameter-bearing adversary families beyond the
// paper's 1-interval-connected strategies. Each has a canonical spec label
// (see AdversarySpec and ParseAdversary), so zoo scenarios are sweepable,
// fingerprintable and remotely submittable like the built-ins.

// TIntervalConnected returns the tinterval(T=t) zoo adversary: a seeded
// schedule that re-draws its single missing edge only at aligned phase
// boundaries, holding each choice for t consecutive rounds. Within every
// aligned window of t rounds the surviving spanning path is stable —
// phase-aligned T-interval connectivity (Kuhn–Lynch–Oshman), the synchrony
// axis of Mandal–Molla–Moses 2020. t = 1 degenerates to an always-removing
// random single-edge adversary.
func TIntervalConnected(t int, seed int64) Adversary { return adversary.NewTInterval(t, seed) }

// CappedRemoval returns the capped(r=k) zoo adversary: up to r missing
// edges per round (the multi-edge generalization of GreedyBlocking; r = 1
// is exactly GreedyBlocking). With r ≥ 2 the ring may temporarily
// disconnect — the relaxation of 1-interval connectivity the capped model
// is about.
func CappedRemoval(r int) Adversary { return adversary.CappedRemoval{R: r} }

// RecurrentBlocking returns the recurrent(w=k) zoo adversary: greedy
// blocking constrained so no edge stays missing for more than w consecutive
// rounds — every edge reappears at least once in any window of w+1 rounds
// (δ-recurrent dynamics, δ = w). The instance is stateful; use
// RecurrentFactory in scenarios so replays rebuild it fresh.
func RecurrentBlocking(w int) Adversary { return adversary.NewRecurrent(w) }
