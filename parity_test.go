package dynring_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dynring"
)

// updateParity regenerates the engine-parity golden file. Run it only when a
// change is *supposed* to alter engine behaviour (which also requires bumping
// the scenario fingerprint version so stale caches cannot serve results
// computed under the old rules):
//
//	go test -run TestEngineParityGolden -update-parity .
var updateParity = flag.Bool("update-parity", false, "rewrite testdata/engine_parity.json")

// parityEntry is one scenario of the golden file: its grid name, its content
// fingerprint, and the exact Result the engine produced for it.
type parityEntry struct {
	Name        string         `json:"name"`
	Fingerprint string         `json:"fingerprint"`
	Result      dynring.Result `json:"result"`
}

// parityScenarios is the corpus the golden file locks down: the full
// 200-scenario acceptance grid (4 algorithms × 5 sizes × 10 seeds, spanning
// FSYNC, SSYNC/PT and SSYNC/ET), a handful of hand-picked scenarios
// covering the proof adversaries, SSYNC/NS, and cycle detection, and — since
// the dynamics-model zoo — the 315-scenario zoo grid (T-interval, capped
// removal, recurrence, landmark-free exploration). The zoo entries are
// appended after the pre-zoo corpus so the golden file's prefix stays
// byte-comparable across the zoo's introduction.
func parityScenarios(t testing.TB) []dynring.Scenario {
	scs, err := acceptanceSweep(0).Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	extras := []dynring.Scenario{
		{
			Name: "extra/greedy-landmark", Size: 16, Landmark: 0,
			Algorithm: "LandmarkWithChirality", AdversaryLabel: "greedy",
			NewAdversary: dynring.Fixed(dynring.GreedyBlocking()),
		},
		{
			Name: "extra/frontier-pt", Size: 12, Landmark: dynring.NoLandmark,
			Algorithm: "PTBoundWithChirality", AdversaryLabel: "frontier-guard",
			NewAdversary: dynring.Fixed(dynring.FrontierGuarding()),
		},
		{
			Name: "extra/pin-cycle", Size: 8, Landmark: dynring.NoLandmark,
			Algorithm: "KnownNNoChirality", AdversaryLabel: "pin(0)",
			NewAdversary: dynring.Fixed(dynring.PinAgent(0)),
			MaxRounds:    5000, DetectCycles: true,
		},
		{
			Name: "extra/persistent-unconscious", Size: 10, Landmark: dynring.NoLandmark,
			Algorithm: "UnconsciousExploration", AdversaryLabel: "persistent(3)",
			NewAdversary:     dynring.Fixed(dynring.KeepEdgeRemoved(3)),
			StopWhenExplored: true,
		},
		{
			Name: "extra/static-et", Size: 9, Landmark: dynring.NoLandmark,
			Algorithm: "ETBoundNoChirality", Model: dynring.SSyncET,
			AdversaryLabel: "random-act(p=0.7)",
			NewAdversary:   dynring.RandomActivationFactory(0.7, nil),
			Seed:           99,
		},
	}
	out := append(scs, extras...)
	return append(out, zooScenarios(t)...)
}

// runParity executes the corpus and pairs each scenario with its fingerprint
// and Result.
func runParity(t testing.TB) []parityEntry {
	scenarios := parityScenarios(t)
	out := make([]parityEntry, len(scenarios))
	for i, sc := range scenarios {
		fp, err := sc.Fingerprint()
		if err != nil {
			t.Fatalf("fingerprint %s: %v", sc.Name, err)
		}
		res, err := sc.Run()
		if err != nil {
			t.Fatalf("run %s: %v", sc.Name, err)
		}
		out[i] = parityEntry{Name: sc.Name, Fingerprint: fp, Result: res}
	}
	return out
}

// TestEngineParityGolden is the engine-refactor safety net: every scenario of
// the parity corpus must map its fingerprint to exactly the Result recorded
// in testdata/engine_parity.json. Any engine change that alters a single
// field of a single Result fails this test — which is the cache-correctness
// contract of the ringsimd service (equal fingerprints must imply identical
// Results across engine versions, or the fingerprint version must be bumped).
func TestEngineParityGolden(t *testing.T) {
	path := filepath.Join("testdata", "engine_parity.json")
	got := runParity(t)

	if *updateParity {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d entries)", path, len(got))
		return
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (generate with -update-parity): %v", err)
	}
	var want []parityEntry
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("corpus has %d entries, golden has %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Fingerprint != want[i].Fingerprint {
			t.Errorf("%s: fingerprint drifted: %s, golden %s (bump fingerprintVersion if intended)",
				want[i].Name, got[i].Fingerprint, want[i].Fingerprint)
			continue
		}
		if !reflect.DeepEqual(got[i].Result, want[i].Result) {
			t.Errorf("%s: Result drifted from golden:\n got  %+v\n want %+v",
				want[i].Name, got[i].Result, want[i].Result)
		}
	}
}
