package dynring_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dynring"
)

// updateParity regenerates the engine-parity golden file. Run it only when a
// change is *supposed* to alter engine behaviour (which also requires bumping
// the scenario fingerprint version so stale caches cannot serve results
// computed under the old rules):
//
//	go test -run TestEngineParityGolden -update-parity .
var updateParity = flag.Bool("update-parity", false, "rewrite testdata/engine_parity.json")

// parityEntry is one scenario of the golden file: its grid name, its content
// fingerprint, and the exact Result the engine produced for it.
type parityEntry struct {
	Name        string         `json:"name"`
	Fingerprint string         `json:"fingerprint"`
	Result      dynring.Result `json:"result"`
}

// parityScenarios is the corpus the golden file locks down: the full
// 200-scenario acceptance grid (4 algorithms × 5 sizes × 10 seeds, spanning
// FSYNC, SSYNC/PT and SSYNC/ET), a handful of hand-picked scenarios
// covering the proof adversaries, SSYNC/NS, and cycle detection, and — since
// the dynamics-model zoo — the 315-scenario zoo grid (T-interval, capped
// removal, recurrence, landmark-free exploration). The zoo entries are
// appended after the pre-zoo corpus so the golden file's prefix stays
// byte-comparable across the zoo's introduction.
func parityScenarios(t testing.TB) []dynring.Scenario {
	scs, err := acceptanceSweep(0).Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	extras := []dynring.Scenario{
		{
			Name: "extra/greedy-landmark", Size: 16, Landmark: 0,
			Algorithm: "LandmarkWithChirality", AdversaryLabel: "greedy",
			NewAdversary: dynring.Fixed(dynring.GreedyBlocking()),
		},
		{
			Name: "extra/frontier-pt", Size: 12, Landmark: dynring.NoLandmark,
			Algorithm: "PTBoundWithChirality", AdversaryLabel: "frontier-guard",
			NewAdversary: dynring.Fixed(dynring.FrontierGuarding()),
		},
		{
			Name: "extra/pin-cycle", Size: 8, Landmark: dynring.NoLandmark,
			Algorithm: "KnownNNoChirality", AdversaryLabel: "pin(0)",
			NewAdversary: dynring.Fixed(dynring.PinAgent(0)),
			MaxRounds:    5000, DetectCycles: true,
		},
		{
			Name: "extra/persistent-unconscious", Size: 10, Landmark: dynring.NoLandmark,
			Algorithm: "UnconsciousExploration", AdversaryLabel: "persistent(3)",
			NewAdversary:     dynring.Fixed(dynring.KeepEdgeRemoved(3)),
			StopWhenExplored: true,
		},
		{
			Name: "extra/static-et", Size: 9, Landmark: dynring.NoLandmark,
			Algorithm: "ETBoundNoChirality", Model: dynring.SSyncET,
			AdversaryLabel: "random-act(p=0.7)",
			NewAdversary:   dynring.RandomActivationFactory(0.7, nil),
			Seed:           99,
		},
	}
	out := append(scs, extras...)
	out = append(out, zooScenarios(t)...)
	return append(out, leapScenarios(t)...)
}

// leapScenarios is the quiescence-leap grid appended to the parity corpus
// after the zoo entries: fingerprint-capable SSYNC algorithms under
// deterministic scheduled adversaries, with budgets long enough that
// blocked-waiting dominates. These are exactly the runs the engine's leap
// fast path rewrites, so pinning their Results (generated identically by
// the slow path — see TestParityLeapGridMatchesSlowPath) locks the
// leap/step equivalence into the golden file.
func leapScenarios(t testing.TB) []dynring.Scenario {
	t.Helper()
	specs := []dynring.AdversarySpec{
		{Kind: "capped", R: 2},
		{Kind: "capped", R: 3},
		{Kind: "frontier"},
		{Kind: "pin", Pin: 0},
		{Kind: "tinterval", T: 3},
	}
	advs := make([]dynring.SweepAdversary, 0, len(specs))
	for _, spec := range specs {
		f, err := spec.Factory()
		if err != nil {
			t.Fatal(err)
		}
		advs = append(advs, dynring.SweepAdversary{Name: spec.Label(), New: f})
	}
	sw := dynring.Sweep{
		Base: dynring.Scenario{
			Landmark:  dynring.NoLandmark,
			MaxRounds: 60000,
		},
		Algorithms:  []string{"PTBoundWithChirality", "PTBoundNoChirality", "ETUnconscious"},
		Sizes:       []int{8, 12},
		Seeds:       []int64{1, 2},
		Adversaries: advs,
	}
	scs, err := sw.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	for i := range scs {
		scs[i].Name = "leap/" + scs[i].Name
	}
	return scs
}

// runParity executes the corpus and pairs each scenario with its fingerprint
// and Result.
func runParity(t testing.TB) []parityEntry {
	scenarios := parityScenarios(t)
	out := make([]parityEntry, len(scenarios))
	for i, sc := range scenarios {
		fp, err := sc.Fingerprint()
		if err != nil {
			t.Fatalf("fingerprint %s: %v", sc.Name, err)
		}
		res, err := sc.Run()
		if err != nil {
			t.Fatalf("run %s: %v", sc.Name, err)
		}
		out[i] = parityEntry{Name: sc.Name, Fingerprint: fp, Result: res}
	}
	return out
}

// TestEngineParityGolden is the engine-refactor safety net: every scenario of
// the parity corpus must map its fingerprint to exactly the Result recorded
// in testdata/engine_parity.json. Any engine change that alters a single
// field of a single Result fails this test — which is the cache-correctness
// contract of the ringsimd service (equal fingerprints must imply identical
// Results across engine versions, or the fingerprint version must be bumped).
func TestEngineParityGolden(t *testing.T) {
	path := filepath.Join("testdata", "engine_parity.json")
	got := runParity(t)

	if *updateParity {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d entries)", path, len(got))
		return
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (generate with -update-parity): %v", err)
	}
	var want []parityEntry
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("corpus has %d entries, golden has %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Fingerprint != want[i].Fingerprint {
			t.Errorf("%s: fingerprint drifted: %s, golden %s (bump fingerprintVersion if intended)",
				want[i].Name, got[i].Fingerprint, want[i].Fingerprint)
			continue
		}
		if !reflect.DeepEqual(got[i].Result, want[i].Result) {
			t.Errorf("%s: Result drifted from golden:\n got  %+v\n want %+v",
				want[i].Name, got[i].Result, want[i].Result)
		}
	}
}

// TestParityLeapGridMatchesSlowPath re-runs the leap grid of the parity
// corpus with quiescence leaping disabled and checks the slow-path Results
// against the golden file (which the leap-enabled default path produced).
// Together with TestEngineParityGolden this pins leap ≡ step for every
// golden leap entry: the golden must simultaneously match both paths.
func TestParityLeapGridMatchesSlowPath(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "engine_parity.json"))
	if err != nil {
		t.Fatalf("missing golden file (generate with -update-parity): %v", err)
	}
	var want []parityEntry
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	golden := make(map[string]parityEntry, len(want))
	for _, e := range want {
		golden[e.Name] = e
	}
	checked := 0
	for _, sc := range leapScenarios(t) {
		e, ok := golden[sc.Name]
		if !ok {
			t.Fatalf("%s missing from golden (regenerate with -update-parity)", sc.Name)
		}
		sc.DisableLeap = true
		res, err := sc.Run()
		if err != nil {
			t.Fatalf("%s: slow run: %v", sc.Name, err)
		}
		if !reflect.DeepEqual(res, e.Result) {
			t.Errorf("%s: slow path diverged from golden:\n slow   %+v\n golden %+v",
				sc.Name, res, e.Result)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("leap grid is empty")
	}
}
