package dynring_test

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"dynring"
)

// memoSweep is a deterministic schedule-heavy grid with a fat seed axis:
// greedy and capped ignore their seeds, so the memo must collapse each
// (algorithm, size, adversary) cell to one execution.
func memoSweep(memo *dynring.Memo, workers int) dynring.Sweep {
	greedy, _ := dynring.AdversarySpec{Kind: "greedy"}.Factory()
	capped, _ := dynring.AdversarySpec{Kind: "capped", R: 2}.Factory()
	return dynring.Sweep{
		Base: dynring.Scenario{Landmark: 0, MaxRounds: 3000},
		Algorithms: []string{
			"KnownNNoChirality", "PTBoundWithChirality",
		},
		Sizes: []int{6, 9},
		Seeds: []int64{1, 2, 3, 4, 5},
		Adversaries: []dynring.SweepAdversary{
			{Name: "greedy", New: greedy},
			{Name: "capped(r=2)", New: capped},
		},
		Workers: workers,
		Memo:    memo,
	}
}

// TestSweepMemoCollapsesSeeds: a memoized sweep must deliver results
// identical to the unmemoized sweep, execute each unique memo key once
// (seed axis collapsed for seed-ignoring adversaries), and mark replayed
// rows Cached.
func TestSweepMemoCollapsesSeeds(t *testing.T) {
	ctx := context.Background()
	plain, err := memoSweep(nil, 1).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	memo := dynring.NewMemo(1024)
	cached, err := memoSweep(memo, 1).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(cached) {
		t.Fatalf("row counts differ: %d vs %d", len(plain), len(cached))
	}
	uniqueCells := 2 * 2 * 2 // algorithms × sizes × adversaries; seeds collapse
	executed := 0
	for i := range plain {
		if plain[i].Err != nil || cached[i].Err != nil {
			t.Fatalf("row %d errored: %v / %v", i, plain[i].Err, cached[i].Err)
		}
		if !reflect.DeepEqual(plain[i].Result, cached[i].Result) {
			t.Fatalf("row %d (%s): memoized Result differs:\n memo %+v\n plain %+v",
				i, plain[i].Scenario.Name, cached[i].Result, plain[i].Result)
		}
		if !cached[i].Cached {
			executed++
		}
	}
	if executed != uniqueCells {
		t.Fatalf("executed %d scenarios, want exactly %d unique cells", executed, uniqueCells)
	}
	st := memo.Stats()
	if st.Size != uniqueCells {
		t.Fatalf("memo holds %d entries, want %d", st.Size, uniqueCells)
	}
	if st.Hits == 0 {
		t.Fatal("memo recorded no hits")
	}

	// A second sweep against the same memo replays everything.
	again, err := memoSweep(memo, 4).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if !again[i].Cached {
			t.Fatalf("row %d (%s) re-executed on the second sweep", i, again[i].Scenario.Name)
		}
		if !reflect.DeepEqual(again[i].Result, plain[i].Result) {
			t.Fatalf("row %d: replay differs from plain execution", i)
		}
	}
}

// TestSweepMemoKeepsSeedSensitiveSeeds: seed-consuming adversary kinds
// (tinterval draws its phase edges from the seed) must NOT collapse across
// the seed axis — each seed stays its own execution.
func TestSweepMemoKeepsSeedSensitiveSeeds(t *testing.T) {
	ti, _ := dynring.AdversarySpec{Kind: "tinterval", T: 2}.Factory()
	memo := dynring.NewMemo(1024)
	sw := dynring.Sweep{
		Base:        dynring.Scenario{Landmark: 0, MaxRounds: 2000},
		Algorithms:  []string{"KnownNNoChirality"},
		Sizes:       []int{8},
		Seeds:       []int64{1, 2, 3, 4},
		Adversaries: []dynring.SweepAdversary{{Name: "tinterval(T=2)", New: ti}},
		Workers:     1,
		Memo:        memo,
	}
	results, err := sw.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Cached {
			t.Fatalf("%s replayed across seeds of a seeded adversary", r.Scenario.Name)
		}
	}
	if st := memo.Stats(); st.Size != len(results) {
		t.Fatalf("memo holds %d entries, want %d distinct keys", st.Size, len(results))
	}
}

// TestRunnerMemoNotFingerprintableFallback: scenarios without a canonical
// fingerprint must bypass the memo and execute normally.
func TestRunnerMemoNotFingerprintableFallback(t *testing.T) {
	r := dynring.NewRunner()
	r.Memo = dynring.NewMemo(16)
	sc := dynring.Scenario{
		Size: 8, Landmark: 0, Algorithm: "KnownNNoChirality",
		// A live factory without a label is not content-addressable.
		NewAdversary: func(int64) dynring.Adversary { return dynring.GreedyBlocking() },
	}
	for i := 0; i < 2; i++ {
		res, cached, err := r.RunCached(context.Background(), sc)
		if err != nil {
			t.Fatal(err)
		}
		if cached {
			t.Fatal("unfingerprintable scenario reported as cached")
		}
		if res.Rounds == 0 {
			t.Fatal("scenario did not run")
		}
	}
	if st := r.Memo.Stats(); st.Size != 0 || st.Hits+st.Misses != 0 {
		t.Fatalf("memo touched by unfingerprintable scenario: %+v", st)
	}
}

// TestMemoSingleFlight: concurrent workers missing on the same key must
// execute it once; the waiters replay the leader's Result.
func TestMemoSingleFlight(t *testing.T) {
	memo := dynring.NewMemo(16)
	sc := dynring.Scenario{
		Size: 9, Landmark: 0, Algorithm: "PTBoundWithChirality",
		AdversaryLabel: "capped(r=2)",
		NewAdversary:   dynring.Fixed(dynring.CappedRemoval(2)),
		MaxRounds:      100_000,
	}
	const workers = 8
	var executions atomic.Int32
	var replays atomic.Int32
	var wg sync.WaitGroup
	results := make([]dynring.Result, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := dynring.NewRunner()
			r.Memo = memo
			res, cached, err := r.RunCached(context.Background(), sc)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
			if cached {
				replays.Add(1)
			} else {
				executions.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if got := executions.Load(); got != 1 {
		t.Fatalf("%d workers executed the same key, want exactly 1", got)
	}
	if got := replays.Load(); got != workers-1 {
		t.Fatalf("%d replays, want %d", got, workers-1)
	}
	for i := 1; i < workers; i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("worker %d result differs from leader", i)
		}
	}
}

// TestMemoDisabledCapacity: a non-positive capacity memo stores nothing and
// every scenario executes.
func TestMemoDisabledCapacity(t *testing.T) {
	memo := dynring.NewMemo(0)
	results, err := memoSweep(memo, 1).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Cached {
			t.Fatalf("%s served from a disabled memo", r.Scenario.Name)
		}
	}
	if st := memo.Stats(); st.Size != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("disabled memo counted: %+v", st)
	}
}
