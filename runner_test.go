package dynring_test

import (
	"context"
	"reflect"
	"testing"

	"dynring"
)

// TestRunnerMatchesScenarioRun: executing scenarios back-to-back through one
// Runner — worlds Reset in place, rings served from cache — must be
// indistinguishable from running each through a fresh Scenario.Run. The
// corpus deliberately interleaves algorithms, sizes and adversaries so every
// Reset transitions between genuinely different configurations.
func TestRunnerMatchesScenarioRun(t *testing.T) {
	scenarios := parityScenarios(t)
	// Thin the 200-scenario grid for speed; keep every 7th plus all extras.
	var corpus []dynring.Scenario
	for i, sc := range scenarios {
		if i%7 == 0 || i >= 200 {
			corpus = append(corpus, sc)
		}
	}

	r := dynring.NewRunner()
	ctx := context.Background()
	for _, sc := range corpus {
		fresh, err := sc.Run()
		if err != nil {
			t.Fatalf("%s: fresh run: %v", sc.Name, err)
		}
		batched, err := r.Run(ctx, sc)
		if err != nil {
			t.Fatalf("%s: runner run: %v", sc.Name, err)
		}
		if !reflect.DeepEqual(fresh, batched) {
			t.Fatalf("%s: Runner diverged from Scenario.Run:\nfresh   %+v\nbatched %+v", sc.Name, fresh, batched)
		}
	}
}

// TestRunnerSurvivesErrors: a failed Run (validation error) must leave the
// Runner fully usable for the next scenario.
func TestRunnerSurvivesErrors(t *testing.T) {
	r := dynring.NewRunner()
	ctx := context.Background()

	good := dynring.Scenario{Size: 8, Landmark: 0, Algorithm: "LandmarkWithChirality"}
	want, err := good.Run()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(ctx, good); err != nil {
		t.Fatal(err)
	}

	bad := good
	bad.Algorithm = "NoSuchAlgorithm"
	if _, err := r.Run(ctx, bad); err == nil {
		t.Fatal("runner accepted an unknown algorithm")
	}
	tiny := good
	tiny.Size = 2 // below ring.MinSize
	if _, err := r.Run(ctx, tiny); err == nil {
		t.Fatal("runner accepted a too-small ring")
	}

	got, err := r.Run(ctx, good)
	if err != nil {
		t.Fatalf("runner unusable after errors: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-error run diverged: %+v vs %+v", got, want)
	}
}

// TestRunnerHonoursCancellation: a cancelled context aborts a run through
// the Runner exactly like through Scenario.RunContext.
func TestRunnerHonoursCancellation(t *testing.T) {
	r := dynring.NewRunner()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sc := dynring.Scenario{Size: 64, Landmark: 0, Algorithm: "LandmarkWithChirality"}
	if _, err := r.Run(ctx, sc); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// And the runner still works afterwards.
	if _, err := r.Run(context.Background(), sc); err != nil {
		t.Fatal(err)
	}
}

// TestScenarioStepZeroAllocSteadyState is the public-surface twin of the
// engine gate: a registry algorithm stepped through the World built by
// Scenario.NewWorld must allocate nothing per round in steady state (FSYNC,
// no observer, no cycle detection).
func TestScenarioStepZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; gate runs in the non-race pass")
	}
	w, err := dynring.Scenario{
		Size:      64,
		Landmark:  dynring.NoLandmark,
		Algorithm: "UnconsciousExploration",
		Model:     dynring.FSync,
	}.NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := w.Step(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := w.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state Step allocates %.2f objects/round, want 0", avg)
	}
}

// TestRunnerBatchedAllocBound gates the Runner's batched-reuse economics:
// executing the mixed 12-scenario bench batch through one warm Runner must
// stay within a small allocation budget per batch (the measured cost is 120
// allocs — fresh per-run protocols, adversaries and Results — against ~300
// for fresh Scenario.RunContext executions). A regression here means world
// or ring reuse silently broke.
func TestRunnerBatchedAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; gate runs in the non-race pass")
	}
	sw := dynring.Sweep{
		Base: dynring.Scenario{
			Landmark:       0,
			AdversaryLabel: "random(p=0.4)",
			NewAdversary:   dynring.RandomEdgesFactory(0.4),
		},
		Algorithms: []string{"KnownNNoChirality", "LandmarkWithChirality"},
		Sizes:      []int{8, 16, 32},
		Seeds:      []int64{1, 2},
	}
	scs, err := sw.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	r := dynring.NewRunner()
	for _, sc := range scs { // warm-up: build worlds, rings, scratch
		if _, err := r.Run(ctx, sc); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		for _, sc := range scs {
			if _, err := r.Run(ctx, sc); err != nil {
				t.Fatal(err)
			}
		}
	})
	// 120 measured + headroom for toolchain drift; 12 scenarios per batch.
	const maxBatchAllocs = 132
	if avg > maxBatchAllocs {
		t.Fatalf("batched Runner.Run allocates %.1f objects per %d-scenario batch, want ≤ %d",
			avg, len(scs), maxBatchAllocs)
	}
}
