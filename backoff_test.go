package dynring

import (
	"testing"
	"time"
)

// TestBackoffJitterBounds pins the retry sleep distribution: full jitter
// draws uniformly from (0, d], never zero (a zero sleep would turn a
// retry loop into a hot spin) and never over the window (the doubling
// schedule's cap must stay the worst case). The bounds here are a
// regression contract — "equal jitter" or "d/2 + rand(d/2)" variants
// would fail the min/mean checks, and removing the jitter entirely would
// fail the spread check.
func TestBackoffJitterBounds(t *testing.T) {
	const d = 100 * time.Millisecond
	const draws = 2000
	var sum time.Duration
	minSeen, maxSeen := time.Duration(1<<62), time.Duration(0)
	for i := 0; i < draws; i++ {
		got := backoffJitter(d)
		if got <= 0 || got > d {
			t.Fatalf("draw %d: backoffJitter(%v) = %v, want in (0, %v]", i, d, got, d)
		}
		sum += got
		minSeen = min(minSeen, got)
		maxSeen = max(maxSeen, got)
	}
	// Uniform over (0, d] has mean d/2; with 2000 draws the sample mean is
	// within a few percent with overwhelming probability. The bounds are
	// deliberately loose (±15%) so the test is deterministic in practice
	// while still rejecting any non-uniform or offset variant.
	mean := sum / draws
	if mean < 35*time.Millisecond || mean > 65*time.Millisecond {
		t.Fatalf("sample mean %v outside [35ms, 65ms]; distribution is not full jitter over (0, %v]", mean, d)
	}
	// Full jitter uses the whole window: across 2000 draws both tails must
	// be visited (each tail decile is missed with probability ~0.9^2000).
	if minSeen > d/10 {
		t.Fatalf("minimum draw %v > %v; low tail never sampled", minSeen, d/10)
	}
	if maxSeen < 9*d/10 {
		t.Fatalf("maximum draw %v < %v; high tail never sampled", maxSeen, 9*d/10)
	}
}

// TestBackoffJitterDegenerate: non-positive windows sleep zero — callers
// pass the pre-jitter schedule value directly and must not panic on a
// zero base delay.
func TestBackoffJitterDegenerate(t *testing.T) {
	if got := backoffJitter(0); got != 0 {
		t.Fatalf("backoffJitter(0) = %v, want 0", got)
	}
	if got := backoffJitter(-time.Second); got != 0 {
		t.Fatalf("backoffJitter(-1s) = %v, want 0", got)
	}
	if got := backoffJitter(1); got != 1 {
		t.Fatalf("backoffJitter(1ns) = %v, want 1ns (the only value in (0, 1])", got)
	}
}
