package dynring_test

import (
	"errors"
	"strings"
	"testing"

	"dynring"
)

func TestRunQuickstart(t *testing.T) {
	res, err := dynring.Run(dynring.Config{
		Size:      12,
		Landmark:  0,
		Algorithm: "LandmarkWithChirality",
		Adversary: dynring.RandomEdges(0.5, 42),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Explored || res.Terminated != 2 {
		t.Fatalf("unexpected result: %+v", res)
	}
}

func TestRunDefaults(t *testing.T) {
	// Defaults: even spacing, chirality, bound = size, FSYNC regime.
	res, err := dynring.Run(dynring.Config{
		Size:      9,
		Landmark:  dynring.NoLandmark,
		Algorithm: "KnownNNoChirality",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Explored || res.Terminated != 2 {
		t.Fatalf("unexpected result: %+v", res)
	}
	want := 3*9 - 6
	for i, tr := range res.TerminatedAt {
		if tr != want {
			t.Errorf("agent %d terminated at %d, want %d", i, tr, want)
		}
	}
}

func TestRunSSYNCAlgorithm(t *testing.T) {
	res, err := dynring.Run(dynring.Config{
		Size:      8,
		Landmark:  dynring.NoLandmark,
		Algorithm: "PTBoundWithChirality",
		Adversary: dynring.RandomActivation(0.6, 7, dynring.RandomEdges(0.5, 8)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Explored || res.Terminated < 1 {
		t.Fatalf("unexpected result: %+v", res)
	}
}

func TestRunValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  dynring.Config
		want error
	}{
		{
			name: "unknown algorithm",
			cfg:  dynring.Config{Size: 8, Algorithm: "Nope"},
			want: dynring.ErrUnknownAlgorithm,
		},
		{
			name: "missing landmark",
			cfg: dynring.Config{Size: 8, Landmark: dynring.NoLandmark,
				Algorithm: "LandmarkWithChirality"},
			want: dynring.ErrRequirement,
		},
		{
			name: "chirality violated",
			cfg: dynring.Config{Size: 8, Landmark: 0, Algorithm: "LandmarkWithChirality",
				Orients: []dynring.GlobalDir{dynring.CW, dynring.CCW}},
			want: dynring.ErrRequirement,
		},
		{
			name: "bound below size",
			cfg: dynring.Config{Size: 8, Landmark: dynring.NoLandmark,
				Algorithm: "KnownNNoChirality", UpperBound: 5},
			want: dynring.ErrRequirement,
		},
		{
			name: "wrong agent count",
			cfg: dynring.Config{Size: 8, Landmark: dynring.NoLandmark,
				Algorithm: "KnownNNoChirality", Starts: []int{0, 1, 2}},
			want: dynring.ErrRequirement,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := dynring.Run(tt.cfg); !errors.Is(err, tt.want) {
				t.Fatalf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestAlgorithmsRegistry(t *testing.T) {
	// The paper's 11 protocols plus the zoo's landmark-free algorithm.
	algos := dynring.Algorithms()
	if len(algos) != 12 {
		t.Fatalf("registry has %d algorithms, want 12", len(algos))
	}
	for _, a := range algos {
		if a.Name == "" || a.Paper == "" || a.Description == "" || a.Agents < 2 || len(a.Models) == 0 {
			t.Errorf("incomplete spec: %+v", a)
		}
		if _, ok := dynring.LookupAlgorithm(a.Name); !ok {
			t.Errorf("lookup failed for %s", a.Name)
		}
	}
}

func TestTraceObserver(t *testing.T) {
	rec := dynring.NewTrace(8)
	_, err := dynring.Run(dynring.Config{
		Size:      8,
		Landmark:  dynring.NoLandmark,
		Algorithm: "KnownNNoChirality",
		Adversary: dynring.KeepEdgeRemoved(3),
		Observer:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := rec.RenderString(dynring.TraceOptions{Landmark: dynring.NoLandmark, MaxRows: 12})
	if !strings.Contains(out, "x") || !strings.Contains(out, "round") {
		t.Fatalf("diagram incomplete:\n%s", out)
	}
}

// maintenanceWindow is a custom adversary written against the public API:
// it removes a rotating edge, one per "maintenance window" of w rounds.
type maintenanceWindow struct{ w int }

func (m maintenanceWindow) Activate(_ int, w *dynring.World) []int {
	ids := make([]int, w.NumAgents())
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func (m maintenanceWindow) MissingEdge(t int, w *dynring.World, _ []dynring.Intent) int {
	return (t / m.w) % w.Ring().Size()
}

func TestCustomAdversary(t *testing.T) {
	res, err := dynring.Run(dynring.Config{
		Size:      10,
		Landmark:  dynring.NoLandmark,
		Algorithm: "UnconsciousExploration",
		Adversary: maintenanceWindow{w: 3},
		Orients:   []dynring.GlobalDir{dynring.CW, dynring.CCW},
		MaxRounds: 2000, StopWhenExplored: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Explored {
		t.Fatalf("not explored: %+v", res)
	}
}
