module dynring

go 1.24
