package dynring

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// This file is the Go client of the ringsimd sweep service
// (internal/service, cmd/ringsimd) and the wire types its HTTP API speaks.
// The types live in the root package so remote submission uses the same
// vocabulary as local execution: build a SweepSpec, and either materialize
// it locally (SweepSpec.Sweep) or hand it to a Client.

// TraceHeader is the HTTP header that propagates a sweep's trace ID: the
// service stamps it on POST /v1/sweeps responses, accepts a caller-supplied
// ID on submission, and forwards it across POST /v1/run proxy hops so every
// span a sweep causes — on any node — carries one trace ID.
const TraceHeader = "X-Dynring-Trace"

// TenantHeader is the HTTP header that carries a tenant's API key on
// work-creating requests, as an alternative to "Authorization: Bearer".
// The service's cluster proxy also forwards it on POST /v1/run hops so the
// owning node accounts the execution to the originating tenant.
const TenantHeader = "X-Dynring-Tenant"

// PriorityHeader and DeadlineHeader qualify a POST /v1/sweeps submission:
// an integer scheduling priority (higher is served first within the
// tenant), and a relative deadline as a Go duration after which the server
// cancels the job.
const (
	PriorityHeader = "X-Dynring-Priority"
	DeadlineHeader = "X-Dynring-Deadline"
)

// JobStatus is the service's snapshot of one sweep job.
type JobStatus struct {
	ID string `json:"id"`
	// TraceID is the sweep's trace identifier; GET /v1/sweeps/{id}/trace
	// returns the spans recorded under it.
	TraceID string `json:"trace_id,omitempty"`
	// Tenant is the admission principal the job was accepted under;
	// Priority its scheduling class within that tenant. Deadline, when
	// set, is the absolute time the server will cancel the job at.
	Tenant   string    `json:"tenant,omitempty"`
	Priority int       `json:"priority,omitempty"`
	Deadline time.Time `json:"deadline,omitzero"`
	// State is "running", "done" or "cancelled".
	State string `json:"state"`
	// Total is the grid size; Completed counts settled scenarios (finished,
	// served from cache, or cancelled); Errors counts settled scenarios
	// that carry an error.
	Total     int `json:"total"`
	Completed int `json:"completed"`
	Errors    int `json:"errors"`
	// CacheHits counts scenarios served from the result cache.
	CacheHits int       `json:"cache_hits"`
	Created   time.Time `json:"created"`
}

// Done reports whether the job has settled (every scenario completed,
// whether by running, cache hit, or cancellation).
func (s JobStatus) Done() bool { return s.State != "running" }

// StreamAbortedIndex is the Index of the terminal error row the service
// appends when a results stream dies before delivering every row (e.g. the
// request's context expired server-side). Data rows are numbered from 0, so
// the sentinel can never collide with one. A stream that ends without
// either all rows or this sentinel was truncated in transit.
const StreamAbortedIndex = -1

// ResultRow is one line of a job's NDJSON result stream, in grid order.
// Every field is a deterministic function of the scenario, so the stream of
// a completed job is byte-identical across repeats and worker counts; in
// particular there is deliberately no cache/wall-time field here — those
// live in JobStatus and ServiceStats.
type ResultRow struct {
	// Index is the row's grid position, or StreamAbortedIndex on the
	// terminal row of an aborted stream.
	Index       int    `json:"index"`
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
	// Result is set when the run finished; Error carries validation, engine
	// or cancellation failures.
	Result *Result `json:"result,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// TraceSpan is one traced scenario of a sweep as exposed by
// GET /v1/sweeps/{id}/trace: which node served it, how (executed, cache
// hit, or proxied to its owner), and when. Spans adopted from a proxy hop
// carry the owning node's name, so a proxied sweep's trace shows work from
// multiple nodes under the one trace ID.
type TraceSpan struct {
	// Index is the scenario's grid position; Name its expanded grid name.
	Index int    `json:"index"`
	Name  string `json:"name,omitempty"`
	// Node is the advertised URL of the node the span ran on ("local" for
	// a standalone service).
	Node string `json:"node"`
	// Kind is "executed", "cache-hit", "proxied" (the coordinator-side
	// hop record) or "error".
	Kind string `json:"kind"`
	// EnqueuedAt→StartedAt is the scenario's queue wait; StartedAt→
	// FinishedAt its execution (or proxy round trip). EnqueuedAt is zero
	// for spans recorded outside a job queue (the /v1/run handler).
	EnqueuedAt time.Time `json:"enqueued_at,omitempty"`
	StartedAt  time.Time `json:"started_at"`
	FinishedAt time.Time `json:"finished_at"`
	// Error carries the failure when Kind is "error".
	Error string `json:"error,omitempty"`
}

// SweepTrace is the GET /v1/sweeps/{id}/trace document: the spans recorded
// for one sweep, oldest first, under its trace ID. The server's span buffer
// is bounded per sweep; Dropped counts spans evicted once the cap was hit,
// so consumers can tell a complete trace from an elided one.
type SweepTrace struct {
	SweepID string      `json:"sweep_id"`
	TraceID string      `json:"trace_id"`
	Spans   []TraceSpan `json:"spans"`
	Dropped int         `json:"dropped,omitempty"`
}

// CacheStats snapshots the service's result cache.
type CacheStats struct {
	// Size and Capacity count entries. Capacity 0 means the cache is
	// disabled (ringsimd -cache 0): lookups short-circuit, so Hits and
	// Misses both stay 0 — "caching off", not a 0% hit rate.
	Size     int `json:"size"`
	Capacity int `json:"capacity"`
	// Hits and Misses count Get outcomes since startup; on a disabled
	// cache neither counter ever advances.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// DiskTierStats snapshots the durable content-addressed result tier
// (ringsimd -data); it appears in /statsz when the tier is enabled.
type DiskTierStats struct {
	// Entries and Bytes describe the durable entries on disk.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// QueueDepth counts writes waiting on the asynchronous writer;
	// -drain flushes it to zero before exit.
	QueueDepth int `json:"queue_depth"`
	// Hits and Misses count disk-tier lookups (memory-tier misses that
	// fell through); Skipped counts corrupt entries ignored since boot.
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Skipped int    `json:"skipped"`
}

// JobQueueStat is one job's scheduler backlog in /statsz.
type JobQueueStat struct {
	ID string `json:"id"`
	// Tenant and Priority locate the job in the scheduler: which tenant
	// lane it queues in, and its class within that lane.
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
	// Pending counts scenarios not yet dispatched to a worker.
	Pending int `json:"pending"`
}

// TenantStat is one tenant's admission accounting in /statsz; present only
// on nodes running with a tenant config.
type TenantStat struct {
	Name   string `json:"name"`
	Weight int    `json:"weight"`
	// QueuedScenarios is the tenant's undispatched backlog (what MaxQueued
	// bounds); RunningJobs its admitted, unsettled jobs (what
	// MaxConcurrent bounds).
	QueuedScenarios int   `json:"queued_scenarios"`
	RunningJobs     int64 `json:"running_jobs"`
	// Admitted and Rejected count submissions past and against the quota
	// checks; ServedTasks counts scenario dispatches (the realized
	// weighted share); DeadlineExpirations counts jobs cancelled by their
	// deadline.
	Admitted            uint64 `json:"admitted"`
	Rejected            uint64 `json:"rejected"`
	ServedTasks         uint64 `json:"served_tasks"`
	DeadlineExpirations uint64 `json:"deadline_expirations"`
}

// ServiceStats is the /statsz document.
type ServiceStats struct {
	// Jobs counts the jobs currently retained (settled jobs are evicted
	// beyond the server's job-history bound, so this is not monotonic);
	// ActiveJobs counts those still running.
	Jobs       int `json:"jobs"`
	ActiveJobs int `json:"active_jobs"`
	// Workers is the shared pool size.
	Workers int `json:"workers"`
	// Executions counts scenarios actually run on this node (cache misses
	// that were not proxied); Proxied counts scenarios this node routed to
	// their owning peer instead of executing. Summing Executions across a
	// cluster's nodes gives the cluster-wide execution count, which is how
	// the exactly-once property is observable.
	Executions uint64     `json:"executions"`
	Proxied    uint64     `json:"proxied"`
	Cache      CacheStats `json:"cache"`
	// HitRatio is the combined cache-tier hit ratio: of all result
	// lookups, the fraction served without executing (memory or disk
	// tier). 0 when nothing has been looked up yet (or caching is off).
	HitRatio float64 `json:"hit_ratio"`
	// Disk describes the durable tier; absent when -data is unset.
	Disk *DiskTierStats `json:"disk,omitempty"`
	// Queue lists per-job scheduler backlogs for jobs with undispatched
	// scenarios, in submission order.
	Queue []JobQueueStat `json:"queue"`
	// Tenants lists per-tenant admission accounting, in the server's
	// declared tenant order; absent without a tenant config.
	Tenants []TenantStat `json:"tenants,omitempty"`
	// Cluster mirrors /v1/cluster (peer states included) so one /statsz
	// poll captures capacity and topology; absent when clustering is off.
	Cluster *ClusterStatus `json:"cluster,omitempty"`
}

// Client talks to a ringsimd service. The zero value is not usable; call
// NewClient. Methods are safe for concurrent use.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient. Result streams are
	// long-lived: give it no overall Timeout (use the ctx instead).
	HTTPClient *http.Client
	// Retries bounds the retry attempts after a transient failure of a
	// JSON API call (a transport error or a 5xx response): one blip on a
	// long sweep must not fail the whole run. 0 means the default of 3;
	// negative disables retries. Retried POSTs can duplicate a submission
	// when the lost response had actually landed — harmless here, since a
	// duplicate job is served from the result cache.
	Retries int
	// RetryBaseDelay seeds the retry backoff: attempts sleep
	// RetryBaseDelay, then double per retry, capped at retryMaxDelay, and
	// the sleep aborts as soon as ctx does. 0 means the default of 50ms.
	RetryBaseDelay time.Duration
	// TenantKey, when set, is sent as "Authorization: Bearer <key>" on
	// every request — the client's identity against a service running with
	// a tenant config. WithTenant overrides it per submission.
	TenantKey string
}

// NewClient returns a client for the service at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// defaultRetries, defaultRetryDelay and retryMaxDelay shape the transient
// retry policy of Client.do.
const (
	defaultRetries    = 3
	defaultRetryDelay = 50 * time.Millisecond
	retryMaxDelay     = 2 * time.Second
)

func (c *Client) retries() int {
	if c.Retries < 0 {
		return 0
	}
	if c.Retries == 0 {
		return defaultRetries
	}
	return c.Retries
}

func (c *Client) retryDelay() time.Duration {
	if c.RetryBaseDelay <= 0 {
		return defaultRetryDelay
	}
	return c.RetryBaseDelay
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// backoffJitter draws one retry sleep from the "full jitter" distribution:
// uniform in (0, d]. The doubling schedule still caps the window (so the
// k-th retry waits at most base·2^k), but the actual sleep is randomized
// across the whole window — deterministic backoff makes every client that
// failed together retry together, re-spiking the very server they are
// backing off from; jitter decorrelates the waves. The draw is never 0:
// a zero sleep would skip the context-aware wait entirely.
func backoffJitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(rand.Int64N(int64(d))) + 1
}

// errorDoc is the service's error body.
type errorDoc struct {
	Error string `json:"error"`
}

// do issues a request and decodes a JSON body into out (when non-nil).
// Non-2xx responses are turned into errors carrying the server's message.
// Transient failures — transport errors, 5xx responses, and 429
// quota rejections — are retried with capped exponential backoff (see
// Client.Retries); other 4xx responses and context cancellation are
// terminal. A 429 carrying Retry-After waits out the server's hint instead
// of the computed backoff step.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	return c.doTraced(ctx, method, path, "", nil, body, out)
}

// doTraced is do with an optional trace ID stamped into TraceHeader and
// extra headers applied on every attempt, so retried requests stay
// attributed to the same trace and tenant.
func (c *Client) doTraced(ctx context.Context, method, path, trace string, hdr map[string]string, body, out any) error {
	var buf []byte
	if body != nil {
		var err error
		if buf, err = json.Marshal(body); err != nil {
			return err
		}
	}
	delay := c.retryDelay()
	var err error
	for attempt := 0; ; attempt++ {
		if err = c.doOnce(ctx, method, path, trace, hdr, buf, out); err == nil || !transientError(err) {
			return err
		}
		if attempt >= c.retries() {
			return err
		}
		// Prefer the server's own Retry-After hint (a 429's statement of
		// when quota headroom is expected) over the blind backoff step;
		// computed steps are jittered, the server's explicit hint is not.
		wait := backoffJitter(delay)
		var se *serverError
		if errors.As(err, &se) && se.RetryAfter > 0 {
			wait = se.RetryAfter
		}
		// The sleep is context-aware: a cancelled caller aborts the backoff
		// immediately instead of burning the remaining window.
		if serr := sleepCtx(ctx, wait); serr != nil {
			return err
		}
		delay = min(delay*2, retryMaxDelay)
	}
}

// doOnce is one attempt of do.
func (c *Client) doOnce(ctx context.Context, method, path, trace string, hdr map[string]string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if trace != "" {
		req.Header.Set(TraceHeader, trace)
	}
	if c.TenantKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.TenantKey)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return remoteError(resp)
	}
	if out == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// serverError is a non-2xx response as an error; Code drives the retry
// decision and RetryAfter (from a 429's Retry-After header) the backoff.
type serverError struct {
	Code       int
	Status     string
	Message    string
	RetryAfter time.Duration
}

func (e *serverError) Error() string {
	return fmt.Sprintf("dynring: server %s: %s", e.Status, e.Message)
}

// transientError reports whether err is worth retrying: any 5xx (the
// service restarting, a proxy hiccup, ErrClosed during a rolling drain), a
// 429 quota rejection (headroom frees as queued work drains), and any
// transport-level failure (connection refused, reset, timeout) that is not
// the caller's own context ending. Other 4xx responses — bad spec, unknown
// job, bad credentials — are deterministic and never retried.
func transientError(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var se *serverError
	if errors.As(err, &se) {
		return se.Code >= 500 || se.Code == http.StatusTooManyRequests
	}
	var ue *url.Error
	return errors.As(err, &ue)
}

// sleepCtx sleeps for d or until ctx is done, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// remoteError converts a non-2xx response into an error, preferring the
// server's JSON error message and capturing its Retry-After hint (whole
// seconds; the HTTP-date form is not used by this service).
func remoteError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	msg := string(bytes.TrimSpace(raw))
	var doc errorDoc
	if json.Unmarshal(raw, &doc) == nil && doc.Error != "" {
		msg = doc.Error
	}
	se := &serverError{Code: resp.StatusCode, Status: resp.Status, Message: msg}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			se.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return se
}

// SubmitOption qualifies one submission (SubmitSweep, RunSweep,
// RunSweepFunc, RunSweepRouted).
type SubmitOption func(*submitOptions)

type submitOptions struct {
	tenantKey string
	priority  *int
	deadline  time.Duration
}

// WithTenant submits under the given tenant API key, overriding the
// client's TenantKey for this call.
func WithTenant(key string) SubmitOption {
	return func(o *submitOptions) { o.tenantKey = key }
}

// WithPriority sets the job's scheduling priority within its tenant;
// higher is served strictly first. The default is 0.
func WithPriority(p int) SubmitOption {
	return func(o *submitOptions) { o.priority = &p }
}

// WithDeadline bounds the job's lifetime: if it has not settled after d
// the server cancels it, its unfinished rows erroring with the deadline.
func WithDeadline(d time.Duration) SubmitOption {
	return func(o *submitOptions) { o.deadline = d }
}

// headers renders the options as submission request headers.
func (o *submitOptions) headers() map[string]string {
	hdr := map[string]string{}
	if o.tenantKey != "" {
		hdr["Authorization"] = "Bearer " + o.tenantKey
	}
	if o.priority != nil {
		hdr[PriorityHeader] = strconv.Itoa(*o.priority)
	}
	if o.deadline > 0 {
		hdr[DeadlineHeader] = o.deadline.String()
	}
	return hdr
}

// SubmitSweep submits a grid and returns the new job's status. The job runs
// on the server regardless of what happens to this client; cancel it with
// CancelSweep.
func (c *Client) SubmitSweep(ctx context.Context, spec SweepSpec, opts ...SubmitOption) (JobStatus, error) {
	var so submitOptions
	for _, opt := range opts {
		opt(&so)
	}
	var st JobStatus
	err := c.doTraced(ctx, http.MethodPost, "/v1/sweeps", "", so.headers(), spec, &st)
	return st, err
}

// SweepStatus fetches a job's status.
func (c *Client) SweepStatus(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+id, nil, &st)
	return st, err
}

// CancelSweep cancels a job and returns its post-cancellation status.
// Cancelling a settled job is a no-op.
func (c *Client) CancelSweep(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/sweeps/"+id, nil, &st)
	return st, err
}

// SweepTrace fetches a job's trace view: the per-scenario spans recorded
// under the sweep's trace ID, including spans adopted from remote nodes the
// sweep's scenarios were proxied to.
func (c *Client) SweepTrace(ctx context.Context, id string) (SweepTrace, error) {
	var tr SweepTrace
	err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+id+"/trace", nil, &tr)
	return tr, err
}

// ServiceStats fetches the /statsz counters.
func (c *Client) ServiceStats(ctx context.Context) (ServiceStats, error) {
	var st ServiceStats
	err := c.do(ctx, http.MethodGet, "/statsz", nil, &st)
	return st, err
}

// StreamResults streams a job's results in grid order, calling fn once per
// row as each becomes available; it blocks until the job settles, ctx is
// cancelled, or fn returns an error (which aborts the stream and is
// returned).
//
// Truncation is an error, never silence: the expected row count is fetched
// from the job's status up front, a terminal StreamAbortedIndex row from
// the server surfaces as its error, and a stream that ends short of the
// full grid without one (connection cut, proxy timeout) is rejected too.
// fn is never invoked for the terminal sentinel row.
//
// A transiently failed stream is resumed, not restarted: the client
// reconnects with ?from=<next index> (the server's resume cursor) up to
// Retries times, and rows the server re-serves below the cursor are
// silently skipped, so fn observes each index at most once regardless of
// how many reconnects it took. Resume attempts reset whenever a connection
// makes progress; negative Retries disables resumption along with every
// other retry.
func (c *Client) StreamResults(ctx context.Context, id string, fn func(ResultRow) error) error {
	return c.StreamResultsFrom(ctx, id, 0, fn)
}

// errFnAbort wraps an error returned by the caller's row callback so the
// resume loop can tell "the consumer gave up" (terminal, unwrap) from "the
// stream broke" (resumable).
type errFnAbort struct{ err error }

func (e *errFnAbort) Error() string { return e.err.Error() }

// StreamResultsFrom is StreamResults starting at grid index from: rows
// below from are never delivered. It is the resume primitive — a consumer
// that already holds rows [0,N) continues with from=N after its own
// restart, not just after a transport blip.
func (c *Client) StreamResultsFrom(ctx context.Context, id string, from int, fn func(ResultRow) error) error {
	st, err := c.SweepStatus(ctx, id)
	if err != nil {
		return err
	}
	if from < 0 || from > st.Total {
		return fmt.Errorf("dynring: resume index %d out of range for %d rows", from, st.Total)
	}
	next := from
	delay := c.retryDelay()
	var lastErr error
	for attempt := 0; ; attempt++ {
		before := next
		err := c.streamOnce(ctx, id, st.Total, &next, fn)
		if err == nil {
			return nil
		}
		var fa *errFnAbort
		if errors.As(err, &fa) {
			return fa.err
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		var se *serverError
		if errors.As(err, &se) && !transientError(err) {
			// A deterministic rejection of the resume GET itself (404 after
			// job eviction, 400 on a bad cursor) cannot be waited out.
			return err
		}
		if next > before {
			// The connection made progress before dying; a stream can be
			// arbitrarily long-lived, so progress re-earns the full retry
			// budget rather than draining one global allowance.
			attempt = 0
			delay = c.retryDelay()
		}
		if attempt >= c.retries() {
			return err
		}
		lastErr = err
		if serr := sleepCtx(ctx, backoffJitter(delay)); serr != nil {
			return lastErr
		}
		delay = min(delay*2, retryMaxDelay)
	}
}

// streamOnce runs one results connection from *next, advancing *next past
// each row it delivers. Rows below *next (re-served by a resume) are
// skipped without invoking fn. fn errors come back wrapped in errFnAbort;
// every other failure is a broken stream the caller may resume.
func (c *Client) streamOnce(ctx context.Context, id string, total int, next *int, fn func(ResultRow) error) error {
	path := "/v1/sweeps/" + id + "/results"
	if *next > 0 {
		path += "?from=" + strconv.Itoa(*next)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	if c.TenantKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.TenantKey)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return remoteError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var row ResultRow
		if err := json.Unmarshal(line, &row); err != nil {
			// Typically a line cut mid-write by a dying connection; the
			// resume re-fetches it whole.
			return fmt.Errorf("dynring: bad result row: %w", err)
		}
		if row.Index < 0 {
			if row.Error != "" {
				return fmt.Errorf("dynring: server aborted result stream after %d/%d rows: %s", *next, total, row.Error)
			}
			return fmt.Errorf("dynring: server aborted result stream after %d/%d rows", *next, total)
		}
		if row.Index < *next {
			continue
		}
		if row.Index > *next {
			return fmt.Errorf("dynring: result stream skipped from row %d to %d", *next, row.Index)
		}
		*next = row.Index + 1
		if err := fn(row); err != nil {
			return &errFnAbort{err: err}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if *next < total {
		return fmt.Errorf("dynring: result stream truncated: got %d of %d rows", *next, total)
	}
	return nil
}

// RunSweep submits the grid, waits for every result, and returns them in
// grid order as SweepResults — the same shape local Sweep.Run yields, so
// Aggregate and existing reporting code work unchanged. Scenario values are
// reconstructed by expanding the spec locally (also validating it before
// anything is sent); Wall is zero, since the server deliberately does not
// report nondeterministic timings. On ctx cancellation the server-side job
// is cancelled too.
func (c *Client) RunSweep(ctx context.Context, spec SweepSpec, opts ...SubmitOption) ([]SweepResult, error) {
	return c.RunSweepFunc(ctx, spec, nil, nil, opts...)
}

// RunSweepFunc is RunSweep with progress hooks: onStart (when non-nil) is
// called once with the created job's status, and onRow with each
// reconstructed result as it streams in — which is how cmd/ringsim renders
// live remote sweeps. On any failure after submission the server-side job
// is cancelled best-effort, and the results collected so far are returned
// with the error.
func (c *Client) RunSweepFunc(ctx context.Context, spec SweepSpec, onStart func(JobStatus), onRow func(SweepResult), opts ...SubmitOption) ([]SweepResult, error) {
	scenarios, err := spec.ScenarioList()
	if err != nil {
		return nil, err
	}
	st, err := c.SubmitSweep(ctx, spec, opts...)
	if err != nil {
		return nil, err
	}
	if onStart != nil {
		onStart(st)
	}
	if st.Total != len(scenarios) {
		c.abandonSweep(st.ID)
		return nil, fmt.Errorf("dynring: server expanded %d scenarios, local expansion has %d", st.Total, len(scenarios))
	}
	out := make([]SweepResult, 0, len(scenarios))
	err = c.StreamResults(ctx, st.ID, func(row ResultRow) error {
		if row.Index < 0 || row.Index >= len(scenarios) {
			return fmt.Errorf("dynring: result index %d out of range", row.Index)
		}
		r := SweepResult{Index: row.Index, Scenario: scenarios[row.Index]}
		if row.Error != "" {
			r.Err = errors.New(row.Error)
		} else if row.Result != nil {
			r.Result = *row.Result
		}
		out = append(out, r)
		if onRow != nil {
			onRow(r)
		}
		return nil
	})
	if err != nil {
		// On any failure — cancellation or a broken stream — cancel the
		// server-side job; it would otherwise keep burning pool slots with
		// no consumer.
		c.abandonSweep(st.ID)
		return out, err
	}
	return out, nil
}

// abandonSweep best-effort-cancels a job this client no longer consumes,
// on its own short deadline (the caller's ctx may already be dead).
func (c *Client) abandonSweep(id string) {
	cctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, _ = c.CancelSweep(cctx, id)
}
