//go:build !race

package dynring_test

// raceEnabled reports whether the race detector instruments this test
// binary. Allocation gates are skipped under -race, whose instrumentation
// allocates on its own.
const raceEnabled = false
