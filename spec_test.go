package dynring_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"dynring"
)

func TestAdversarySpecLabels(t *testing.T) {
	tests := []struct {
		spec dynring.AdversarySpec
		want string
	}{
		{dynring.AdversarySpec{Kind: "none"}, "none"},
		{dynring.AdversarySpec{Kind: "greedy"}, "greedy"},
		{dynring.AdversarySpec{Kind: "random", P: 0.5}, "random(p=0.5)"},
		{dynring.AdversarySpec{Kind: "random", P: 0.25}, "random(p=0.25)"},
		{dynring.AdversarySpec{Kind: "pin", Pin: 1}, "pin(1)"},
		{dynring.AdversarySpec{Kind: "persistent", Edge: 3}, "persistent(3)"},
		{dynring.AdversarySpec{Kind: "frontier", Act: 0.6}, "act(0.6)+frontier"},
		{dynring.AdversarySpec{Kind: "random", P: 0.4, Act: 1}, "random(p=0.4)"},
		{dynring.AdversarySpec{Kind: "tinterval", T: 2}, "tinterval(T=2)"},
		{dynring.AdversarySpec{Kind: "capped", R: 3}, "capped(r=3)"},
		{dynring.AdversarySpec{Kind: "recurrent", W: 4}, "recurrent(w=4)"},
		{dynring.AdversarySpec{Kind: "capped", R: 2, Act: 0.8}, "act(0.8)+capped(r=2)"},
	}
	for _, tt := range tests {
		if got := tt.spec.Label(); got != tt.want {
			t.Errorf("Label(%+v) = %q, want %q", tt.spec, got, tt.want)
		}
	}
	// Labels must separate parameterizations: same kind, different params.
	a := dynring.AdversarySpec{Kind: "random", P: 0.4}.Label()
	b := dynring.AdversarySpec{Kind: "random", P: 0.5}.Label()
	if a == b {
		t.Fatalf("labels collide across parameters: %q", a)
	}
}

func TestAdversarySpecFactory(t *testing.T) {
	for _, kind := range []string{"none", "random", "greedy", "frontier", "pin", "persistent", "prevent"} {
		f, err := dynring.AdversarySpec{Kind: kind, P: 0.5}.Factory()
		if err != nil {
			t.Fatalf("Factory(%q): %v", kind, err)
		}
		if f(1) == nil {
			t.Fatalf("Factory(%q) built a nil adversary", kind)
		}
	}
	if _, err := (dynring.AdversarySpec{Kind: "bogus"}).Factory(); err == nil {
		t.Fatal("unknown kind accepted")
	}
	// Act in (0,1) wraps in RandomActivation (distinct instance type is not
	// observable; at least exercise the path).
	f, err := dynring.AdversarySpec{Kind: "greedy", Act: 0.5}.Factory()
	if err != nil || f(7) == nil {
		t.Fatalf("activation wrap: %v", err)
	}
}

func TestScenarioSpecScenario(t *testing.T) {
	sp := dynring.ScenarioSpec{
		Size:      8,
		Landmark:  dynring.NoLandmark,
		Algorithm: "KnownNNoChirality",
		Model:     "fsync",
		Starts:    []int{0, 1},
		Orients:   []string{"cw", "CCW"},
		Adversary: &dynring.AdversarySpec{Kind: "random", P: 0.3},
		Seed:      42,
	}
	sc, err := sp.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Model != dynring.FSync || sc.Orients[1] != dynring.CCW {
		t.Fatalf("conversion wrong: %+v", sc)
	}
	if sc.AdversaryLabel != "random(p=0.3)" || sc.NewAdversary == nil {
		t.Fatalf("adversary not materialized: label=%q", sc.AdversaryLabel)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}

	for _, bad := range []dynring.ScenarioSpec{
		{Size: 8, Algorithm: "KnownNNoChirality", Model: "warp"},
		{Size: 8, Algorithm: "KnownNNoChirality", Orients: []string{"up"}},
		{Size: 8, Algorithm: "KnownNNoChirality", Adversary: &dynring.AdversarySpec{Kind: "bogus"}},
	} {
		if _, err := bad.Scenario(); err == nil {
			t.Fatalf("bad spec accepted: %+v", bad)
		}
	}
}

// TestSweepSpecRoundTrip: a spec survives JSON and expands to the same grid
// as the hand-built Sweep it mirrors.
func TestSweepSpecRoundTrip(t *testing.T) {
	spec := dynring.SweepSpec{
		Base:        dynring.ScenarioSpec{Landmark: 0},
		Algorithms:  []string{"LandmarkWithChirality"},
		Sizes:       []int{6, 9},
		Seeds:       []int64{1, 2, 3},
		Adversaries: []dynring.AdversarySpec{{Kind: "greedy"}, {Kind: "random", P: 0.4}},
	}
	buf, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back dynring.SweepSpec
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	sw1, err := spec.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	sw2, err := back.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	g1, err := sw1.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := sw2.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(g1) != 12 || len(g2) != 12 {
		t.Fatalf("grid sizes %d, %d", len(g1), len(g2))
	}
	for i := range g1 {
		f1, err1 := g1[i].Fingerprint()
		f2, err2 := g2[i].Fingerprint()
		if err1 != nil || err2 != nil {
			t.Fatalf("fingerprints: %v, %v", err1, err2)
		}
		if f1 != f2 {
			t.Fatalf("scenario %d fingerprint drifts across JSON round trip", i)
		}
		if g1[i].Name != g2[i].Name {
			t.Fatalf("scenario %d names: %q vs %q", i, g1[i].Name, g2[i].Name)
		}
	}
}

func TestParseModel(t *testing.T) {
	for give, want := range map[string]dynring.Model{
		"":         dynring.ModelDefault,
		"default":  dynring.ModelDefault,
		"fsync":    dynring.FSync,
		"FSYNC":    dynring.FSync,
		"ssync-ns": dynring.SSyncNS,
		"ssync/pt": dynring.SSyncPT,
		"ssync-et": dynring.SSyncET,
	} {
		got, err := dynring.ParseModel(give)
		if err != nil || got != want {
			t.Errorf("ParseModel(%q) = %v, %v", give, got, err)
		}
	}
	if _, err := dynring.ParseModel("warp"); err == nil || !strings.Contains(err.Error(), "warp") {
		t.Fatalf("ParseModel(warp) err = %v", err)
	}
}

// TestScenarioSpecInverse: Scenario.Spec round-trips through
// ScenarioSpec.Scenario for every data field, and refuses scenarios whose
// identity is function-valued.
func TestScenarioSpecInverse(t *testing.T) {
	orig := dynring.Scenario{
		Name:             "x",
		Size:             8,
		Landmark:         dynring.NoLandmark,
		Algorithm:        "KnownNNoChirality",
		Model:            dynring.SSyncPT,
		UpperBound:       9,
		ExactSize:        8,
		Starts:           []int{0, 1},
		Orients:          []dynring.GlobalDir{dynring.CW, dynring.CCW},
		Seed:             42,
		MaxRounds:        77,
		StopWhenExplored: true,
		FairnessBound:    3,
		DetectCycles:     true,
	}
	sp, err := orig.Spec()
	if err != nil {
		t.Fatal(err)
	}
	back, err := sp.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Fatalf("round trip diverges:\n%+v\n%+v", orig, back)
	}

	withFactory := orig
	withFactory.NewAdversary = dynring.RandomEdgesFactory(0.5)
	if _, err := withFactory.Spec(); err == nil {
		t.Fatal("live factory serialized")
	}
	withProtos := orig
	withProtos.NewProtocols = func() ([]dynring.Protocol, error) { return nil, nil }
	if _, err := withProtos.Spec(); err == nil {
		t.Fatal("protocol factory serialized")
	}
}

// TestAdversarySpecParameterValidation: wire specs reject parameters the
// CLI also rejects — no silent full-activation fallback on the HTTP path.
func TestAdversarySpecParameterValidation(t *testing.T) {
	for _, bad := range []dynring.AdversarySpec{
		{Kind: "random", P: 0.5, Act: 1.5},
		{Kind: "random", P: 0.5, Act: -0.1},
		{Kind: "pin", Pin: -1},
		{Kind: "persistent", Edge: -2},
	} {
		if _, err := bad.Factory(); err == nil {
			t.Fatalf("accepted %+v", bad)
		}
	}
	// 0 (unset) and 1 (explicit full activation) are both valid.
	for _, act := range []float64{0, 1} {
		if _, err := (dynring.AdversarySpec{Kind: "greedy", Act: act}).Factory(); err != nil {
			t.Fatalf("act=%g rejected: %v", act, err)
		}
	}
}

// TestParseAdversary: the label grammar round-trips through
// AdversarySpec.Label for every kind, including the zoo families and the
// activation wrapper, and rejects malformed or invalid labels.
func TestParseAdversary(t *testing.T) {
	good := []dynring.AdversarySpec{
		{Kind: "none"},
		{Kind: "greedy"},
		{Kind: "frontier"},
		{Kind: "prevent"},
		{Kind: "random", P: 0.5},
		{Kind: "pin", Pin: 2},
		{Kind: "persistent", Edge: 3},
		{Kind: "tinterval", T: 2},
		{Kind: "capped", R: 2},
		{Kind: "recurrent", W: 3},
		{Kind: "capped", R: 1, Act: 0.7},
		{Kind: "greedy", Act: 0.9},
	}
	for _, spec := range good {
		got, err := dynring.ParseAdversary(spec.Label())
		if err != nil {
			t.Errorf("ParseAdversary(%q): %v", spec.Label(), err)
			continue
		}
		if !reflect.DeepEqual(got, spec) {
			t.Errorf("ParseAdversary(%q) = %+v, want %+v", spec.Label(), got, spec)
		}
	}

	// Keys match case-insensitively and bare values are accepted where the
	// canonical label uses them.
	if sp, err := dynring.ParseAdversary("tinterval(t=4)"); err != nil || sp.T != 4 {
		t.Errorf("lowercase key rejected: %+v, %v", sp, err)
	}
	if sp, err := dynring.ParseAdversary("pin(1)"); err != nil || sp.Pin != 1 {
		t.Errorf("bare pin value rejected: %+v, %v", sp, err)
	}

	bad := []string{
		"",
		"bogus",
		"random(q=0.5)",       // wrong parameter key
		"tinterval(T=0)",      // parameter out of range
		"capped(r=0)",         // parameter out of range
		"recurrent(w=-1)",     // parameter out of range
		"tinterval",           // zoo kinds need their parameter
		"capped(r=2",          // unbalanced parentheses
		"act(0.5)capped(r=2)", // act wrapper not closed with )+
		"act(2)+greedy",       // activation probability out of range
		"random(p=x)",         // unparseable value
	}
	for _, label := range bad {
		if _, err := dynring.ParseAdversary(label); err == nil {
			t.Errorf("ParseAdversary(%q) accepted", label)
		}
	}
}

// TestZooSpecsAreWireSafe: the zoo kinds survive the JSON round trip that
// carries them to a ringsimd service.
func TestZooSpecsAreWireSafe(t *testing.T) {
	spec := dynring.SweepSpec{
		Base: dynring.ScenarioSpec{Size: 9, Landmark: -1, Algorithm: "LandmarkFreeExactN"},
		Adversaries: []dynring.AdversarySpec{
			{Kind: "tinterval", T: 2},
			{Kind: "capped", R: 2},
			{Kind: "recurrent", W: 3},
		},
		Seeds: []int64{1, 2},
	}
	buf, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back dynring.SweepSpec
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Fatalf("zoo sweep spec does not round-trip JSON:\n%+v\n%+v", spec, back)
	}
	sw, err := back.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	scs, err := sw.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 6 {
		t.Fatalf("grid has %d scenarios, want 6", len(scs))
	}
	for _, sc := range scs {
		if _, err := sc.Fingerprint(); err != nil {
			t.Errorf("%s: not fingerprintable: %v", sc.Name, err)
		}
	}
}
